//! Structured telemetry on the virtual clock: causal spans, counters and
//! duration histograms, with Chrome-trace and span-tree exporters.
//!
//! The metric [`Recorder`](crate::metrics::Recorder) answers *"how much
//! resource was consumed per 3-second bucket"* — the shape of the paper's
//! Figures 6–8. It cannot answer *"which pipeline stage caused this peak"*.
//! This module adds the attribution layer: typed **spans** with parent
//! causality and key–value attributes, monotonic **counters**, and
//! log-bucketed duration **histograms**, all stamped in virtual time.
//!
//! The subsystem is *zero-overhead when disabled*: the [`Sim`] span/counter
//! entry points check a single `Option` and return immediately (tracked by
//! the `telemetry.span_disabled` scenario in `BENCH_kernel.json`), and a
//! disabled run is event-for-event identical to an enabled one — telemetry
//! never schedules events, never touches the recorder and never draws from
//! the RNG, so golden figure CSVs stay byte-identical either way.
//!
//! Two exporters ship with the store:
//!
//! * [`Telemetry::to_chrome_trace`] — Chrome trace-event JSON (`B`/`E`
//!   pairs, `ts` in virtual-time microseconds) loadable in Perfetto or
//!   `chrome://tracing`;
//! * [`Telemetry::span_tree`] — a plain-text causal tree with per-stage
//!   totals, for terminals and CI logs.
//!
//! [`validate_chrome_trace`] re-parses exported JSON with strict checks
//! (well-formed JSON, monotone `ts`, every `B` closed by an `E`, parent
//! references resolving) so CI can prove the exporter's output is sound.
//!
//! [`Sim`]: crate::engine::Sim

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::{Duration, SimTime};

/// Handle to a recorded span. `SpanId::NONE` is the null handle: returned
/// by `Sim::span_begin` while telemetry is disabled, and accepted (as a
/// no-op) by every span operation, so instrumented code never branches on
/// whether tracing is on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(u32);

impl SpanId {
    /// The null span handle (also the "no parent" marker on root spans).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null handle.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Numeric id for export (`0` = none; real spans start at `1`).
    pub fn raw(self) -> u32 {
        self.0
    }

    fn index(self) -> Option<usize> {
        (self.0 > 0).then(|| self.0 as usize - 1)
    }
}

/// A typed attribute value on a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Free-form text.
    Str(String),
    /// Unsigned integer (counts, ids, byte totals).
    U64(u64),
    /// Floating point (seconds, rates).
    F64(f64),
    /// Flag.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded span: a named interval on the virtual clock with a causal
/// parent and attributes.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Stage name (static at every instrumentation site).
    pub name: &'static str,
    /// Causal parent (`SpanId::NONE` for roots).
    pub parent: SpanId,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed (`None` while still open).
    pub end: Option<SimTime>,
    /// Whether the span ended in failure.
    pub failed: bool,
    /// Key–value attributes, in the order they were attached.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Attribute lookup by key (first match).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Number of log₂ duration buckets (covers 1 µs .. u64::MAX µs).
const HISTO_BUCKETS: usize = 64;

/// A log-bucketed duration histogram: bucket `i` counts durations in
/// `(2^(i-1), 2^i]` microseconds (bucket 0 holds 0–1 µs).
#[derive(Clone, Debug)]
pub struct DurationHisto {
    counts: [u64; HISTO_BUCKETS],
    count: u64,
    sum_ticks: u64,
    max_ticks: u64,
}

impl Default for DurationHisto {
    fn default() -> Self {
        DurationHisto {
            counts: [0; HISTO_BUCKETS],
            count: 0,
            sum_ticks: 0,
            max_ticks: 0,
        }
    }
}

impl DurationHisto {
    fn bucket_of(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let us = d.ticks();
        self.counts[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_ticks = self.sum_ticks.saturating_add(us);
        self.max_ticks = self.max_ticks.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, seconds.
    pub fn total_secs(&self) -> f64 {
        self.sum_ticks as f64 / crate::time::TICKS_PER_SEC as f64
    }

    /// Mean observation, seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs() / self.count as f64
        }
    }

    /// Largest observation, seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_ticks as f64 / crate::time::TICKS_PER_SEC as f64
    }

    /// Quantile estimate in seconds: linear interpolation inside the log₂
    /// bucket holding the target rank, clamped to the observed maximum.
    /// `q` is clamped to `[0, 1]`; an empty histogram yields 0.0.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::metrics::quantile_from_log2(&self.counts, self.count, self.max_ticks, q)
            / crate::time::TICKS_PER_SEC as f64
    }

    /// Non-empty buckets as `(upper_bound_us, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let upper = if i == 0 { 1 } else { 1u64 << i.min(63) };
                (upper, c)
            })
            .collect()
    }
}

/// The telemetry store owned by a [`Sim`](crate::engine::Sim) once
/// `enable_telemetry` has been called.
#[derive(Default)]
pub struct Telemetry {
    pub(crate) spans: Vec<SpanRecord>,
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) histos: BTreeMap<&'static str, DurationHisto>,
    /// Labelled-event execution counts (see `Sim::schedule_labeled`).
    pub(crate) labels: BTreeMap<&'static str, u64>,
    /// Compat instant-event log (the old `trace_lines` strings).
    pub(crate) events: Vec<(SimTime, String)>,
    /// Per-bump counter history `(at, name, cumulative value)` — exported
    /// as Chrome-trace `"C"` counter tracks so Perfetto shows load curves
    /// alongside the spans.
    pub(crate) counter_samples: Vec<(SimTime, &'static str, u64)>,
}

impl Telemetry {
    pub(crate) fn begin_span(
        &mut self,
        name: &'static str,
        parent: SpanId,
        start: SimTime,
    ) -> SpanId {
        // a dangling parent (never issued) downgrades to a root, so the
        // exporter can never emit an unresolvable reference
        let parent = if parent.index().is_some_and(|i| i < self.spans.len()) {
            parent
        } else {
            SpanId::NONE
        };
        self.spans.push(SpanRecord {
            name,
            parent,
            start,
            end: None,
            failed: false,
            attrs: Vec::new(),
        });
        SpanId(self.spans.len() as u32)
    }

    pub(crate) fn end_span(&mut self, id: SpanId, at: SimTime, failed: bool) {
        let Some(i) = id.index() else { return };
        let Some(rec) = self.spans.get_mut(i) else {
            return;
        };
        if rec.end.is_some() {
            return; // first close wins (watchdog vs late completion races)
        }
        rec.end = Some(at.max(rec.start));
        rec.failed = failed;
        let d = at.max(rec.start).since(rec.start);
        self.histos.entry(rec.name).or_default().record(d);
    }

    pub(crate) fn add_attr(&mut self, id: SpanId, key: &'static str, value: AttrValue) {
        if let Some(rec) = id.index().and_then(|i| self.spans.get_mut(i)) {
            rec.attrs.push((key, value));
        }
    }

    /// All spans, in creation order. `SpanId` `n` is `spans()[n-1]`.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// One span by id (`None` for `SpanId::NONE` or foreign ids).
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        id.index().and_then(|i| self.spans.get(i))
    }

    /// Ids of every span with the given name, in creation order.
    pub fn spans_named(&self, name: &str) -> Vec<SpanId> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name == name)
            .map(|(i, _)| SpanId(i as u32 + 1))
            .collect()
    }

    /// Monotonic counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// One counter's value (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The duration histogram for a span name or explicit observation key.
    pub fn histogram(&self, name: &str) -> Option<&DurationHisto> {
        self.histos.get(name)
    }

    /// Labelled-event execution counts (`Sim::schedule_labeled`).
    pub fn labels(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.labels.iter().map(|(k, v)| (*k, *v))
    }

    /// Compat instant-event log (old `Sim::trace` lines).
    pub fn events(&self) -> &[(SimTime, String)] {
        &self.events
    }

    /// Counter bump history `(at, name, cumulative value)`, in record
    /// order (virtual time is therefore non-decreasing).
    pub fn counter_samples(&self) -> &[(SimTime, &'static str, u64)] {
        &self.counter_samples
    }

    /// Ids of `id`'s direct children, in creation order.
    pub fn children_of(&self, id: SpanId) -> Vec<SpanId> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == id)
            .map(|(i, _)| SpanId(i as u32 + 1))
            .collect()
    }

    /// Whether `id` is `root` or transitively below it.
    pub fn is_descendant(&self, id: SpanId, root: SpanId) -> bool {
        let mut cur = id;
        loop {
            if cur == root {
                return true;
            }
            match self.span(cur) {
                Some(s) if !s.parent.is_none() => cur = s.parent,
                _ => return false,
            }
        }
    }

    /// Ids of every span in `root`'s subtree (including `root`), creation
    /// order.
    pub fn subtree(&self, root: SpanId) -> Vec<SpanId> {
        (1..=self.spans.len() as u32)
            .map(SpanId)
            .filter(|&id| self.is_descendant(id, root))
            .collect()
    }

    /// Export as Chrome trace-event JSON (`ts` in virtual-time
    /// microseconds). Spans still open at export time are closed at `now`.
    ///
    /// Spans are packed onto `tid` lanes so that no two spans on one lane
    /// overlap — every `B` is closed by its own `E` before the next `B` on
    /// that lane, which keeps the stream well-formed even when sibling
    /// spans overlap in virtual time (concurrent invocations). Causality
    /// rides in `args.span` / `args.parent`.
    pub fn to_chrome_trace(&self, now: SimTime) -> String {
        // (start, end, span index), creation order breaks start ties so
        // parents (created first) sort before their same-instant children
        let mut order: Vec<(u64, u64, usize)> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let end = s.end.unwrap_or_else(|| now.max(s.start)).ticks();
                (s.start.ticks(), end, i)
            })
            .collect();
        order.sort_by_key(|&(start, _, i)| (start, i));
        // greedy interval partitioning onto lanes
        let mut lane_free_at: Vec<u64> = Vec::new();
        // (ts, lane, seq-in-lane, json text)
        let mut events: Vec<(u64, usize, usize, String)> = Vec::new();
        let mut lane_seq: Vec<usize> = Vec::new();
        for &(start, end, i) in &order {
            let s = &self.spans[i];
            let lane = match lane_free_at.iter().position(|&free| free <= start) {
                Some(l) => l,
                None => {
                    lane_free_at.push(0);
                    lane_seq.push(0);
                    lane_free_at.len() - 1
                }
            };
            lane_free_at[lane] = end;
            let mut args = format!(
                "\"span\":{},\"parent\":{}",
                i + 1,
                s.parent.raw()
            );
            if s.failed {
                args.push_str(",\"failed\":true");
            }
            for (k, v) in &s.attrs {
                let rendered = match v {
                    AttrValue::Str(t) => format!("\"{}\"", json_escape(t)),
                    AttrValue::U64(n) => n.to_string(),
                    AttrValue::F64(n) if n.is_finite() => format!("{n}"),
                    AttrValue::F64(_) => "null".to_string(),
                    AttrValue::Bool(b) => b.to_string(),
                };
                let _ = write!(args, ",\"{}\":{}", json_escape(k), rendered);
            }
            let begin = format!(
                "{{\"name\":\"{}\",\"cat\":\"onserve\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
                json_escape(s.name),
                start,
                lane + 1,
                args
            );
            let close = format!(
                "{{\"name\":\"{}\",\"cat\":\"onserve\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span\":{}}}}}",
                json_escape(s.name),
                end,
                lane + 1,
                i + 1
            );
            events.push((start, lane, lane_seq[lane], begin));
            lane_seq[lane] += 1;
            events.push((end, lane, lane_seq[lane], close));
            lane_seq[lane] += 1;
        }
        // instant events (compat trace lines) on a dedicated lane
        let instant_lane = lane_free_at.len();
        for (seq, (at, msg)) in self.events.iter().enumerate() {
            events.push((
                at.ticks(),
                instant_lane,
                seq,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"trace\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                    json_escape(msg),
                    at.ticks(),
                    instant_lane + 1
                ),
            ));
        }
        // counter tracks ("C" phase) on the lane after the instants: one
        // Perfetto counter track per counter name, each sample carrying the
        // cumulative value at that bump
        let counter_lane = instant_lane + 1;
        for (seq, (at, name, value)) in self.counter_samples.iter().enumerate() {
            events.push((
                at.ticks(),
                counter_lane,
                seq,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                    json_escape(name),
                    at.ticks(),
                    counter_lane + 1,
                    value
                ),
            ));
        }
        // global order: monotone ts; per-lane sequence preserved within ties
        events.sort_by_key(|&(ts, lane, seq, _)| (ts, lane, seq));
        let mut out = String::from("{\"traceEvents\":[");
        for (i, (_, _, _, text)) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(text);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Export as a plain-text span tree with per-stage totals and counter
    /// values. Spans still open at export time render as `open`.
    pub fn span_tree(&self, now: SimTime) -> String {
        let mut out = String::from("span tree (virtual seconds):\n");
        let roots: Vec<SpanId> = self
            .spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent.is_none())
            .map(|(i, _)| SpanId(i as u32 + 1))
            .collect();
        for root in roots {
            self.render_subtree(&mut out, root, 0, now);
        }
        if !self.histos.is_empty() {
            out.push_str("\nper-stage totals:\n");
            out.push_str(&format!(
                "  {:<24} {:>6} {:>12} {:>12} {:>12}\n",
                "stage", "count", "total_s", "p50_s", "p99_s"
            ));
            for (name, h) in &self.histos {
                out.push_str(&format!(
                    "  {:<24} {:>6} {:>12.3} {:>12.3} {:>12.3}\n",
                    name,
                    h.count(),
                    h.total_secs(),
                    h.quantile(0.5),
                    h.quantile(0.99)
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<32} {v}\n"));
            }
        }
        if !self.labels.is_empty() {
            out.push_str("\nevents executed by label:\n");
            for (name, v) in &self.labels {
                out.push_str(&format!("  {name:<32} {v}\n"));
            }
        }
        out
    }

    fn render_subtree(&self, out: &mut String, id: SpanId, depth: usize, now: SimTime) {
        let Some(s) = self.span(id) else { return };
        let indent = "  ".repeat(depth);
        let span_len = match s.end {
            Some(e) => format!("{:.3}s", e.since(s.start).as_secs_f64()),
            None => format!("open ({:.3}s)", now.since(s.start).as_secs_f64()),
        };
        let mut line = format!(
            "{indent}{} [{:.3} – {}] {}",
            s.name,
            s.start.as_secs_f64(),
            s.end
                .map(|e| format!("{:.3}", e.as_secs_f64()))
                .unwrap_or_else(|| "…".into()),
            span_len
        );
        if s.failed {
            line.push_str(" FAILED");
        }
        for (k, v) in &s.attrs {
            let _ = write!(line, " {k}={v}");
        }
        out.push_str(&line);
        out.push('\n');
        for child in self.children_of(id) {
            self.render_subtree(out, child, depth + 1, now);
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Kernel self-profiling snapshot (see `Sim::profile`).
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    /// Events executed so far.
    pub events_executed: u64,
    /// Events still queued.
    pub pending_events: usize,
    /// Deepest the event queue ever got (includes cancelled entries still
    /// physically in the heap).
    pub queue_depth_high_water: usize,
    /// Executed-event counts per `schedule_labeled` label (empty while
    /// telemetry is disabled), sorted by label.
    pub events_by_label: Vec<(String, u64)>,
    /// Per-server busy rollups from the metric recorder, one entry per
    /// `*.busy` series, sorted by key.
    pub server_busy: Vec<ServerBusy>,
}

/// One server's busy/utilization rollup inside a [`KernelProfile`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServerBusy {
    /// Metric key (e.g. `appliance.cpu.busy`).
    pub key: String,
    /// Integrated busy seconds over the run.
    pub busy_secs: f64,
    /// `busy_secs / now` (0 at t = 0).
    pub utilization: f64,
}

impl std::fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "kernel: {} events executed, {} pending, queue high-water {}",
            self.events_executed, self.pending_events, self.queue_depth_high_water
        )?;
        for (label, n) in &self.events_by_label {
            writeln!(f, "  label {label:<28} {n}")?;
        }
        for s in &self.server_busy {
            writeln!(
                f,
                "  busy  {:<28} {:>10.3}s  ({:.1}%)",
                s.key,
                s.busy_secs,
                s.utilization * 100.0
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Strict JSON parsing + Chrome-trace validation (CI-facing)
// ---------------------------------------------------------------------------

/// A parsed JSON value (minimal, strict — mirrors `wsstack::xml`'s
/// hand-rolled recursive descent; no external dependency).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, field order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance one full UTF-8 char
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

/// What [`validate_chrome_trace`] measured about a valid trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total trace events.
    pub events: usize,
    /// `B` (span-begin) events.
    pub begins: usize,
    /// `E` (span-end) events.
    pub ends: usize,
    /// `C` (counter-sample) events.
    pub counters: usize,
    /// Largest `ts` seen, microseconds.
    pub max_ts_us: u64,
}

/// Strict validation of exported Chrome-trace JSON: the document must be
/// well-formed, `ts` must be monotone non-decreasing in stream order,
/// every `B` must be closed by an `E` carrying the same `args.span` id,
/// and every `args.parent` reference must resolve to a span opened by some
/// `B` (or be `0` = root).
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| match v {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or("missing traceEvents array")?;
    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    let mut last_ts: f64 = f64::NEG_INFINITY;
    let mut open: std::collections::BTreeMap<u64, String> = BTreeMap::new();
    let mut all_spans: std::collections::BTreeSet<u64> = Default::default();
    let mut parent_refs: Vec<(u64, u64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: missing ts"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        if ts < last_ts {
            return Err(format!("event {i}: ts {ts} < previous {last_ts}"));
        }
        last_ts = ts;
        check.max_ts_us = check.max_ts_us.max(ts as u64);
        let span_of = |ev: &Json| ev.get("args").and_then(|a| a.get("span")).and_then(Json::as_num);
        match ph {
            "B" => {
                check.begins += 1;
                let span = span_of(ev).ok_or(format!("event {i}: B without args.span"))? as u64;
                let name = ev.get("name").and_then(Json::as_str).unwrap().to_owned();
                if open.insert(span, name).is_some() {
                    return Err(format!("event {i}: span {span} opened twice"));
                }
                all_spans.insert(span);
                if let Some(p) = ev.get("args").and_then(|a| a.get("parent")).and_then(Json::as_num)
                {
                    if p as u64 != 0 {
                        parent_refs.push((span, p as u64));
                    }
                }
            }
            "E" => {
                check.ends += 1;
                let span = span_of(ev).ok_or(format!("event {i}: E without args.span"))? as u64;
                if open.remove(&span).is_none() {
                    return Err(format!("event {i}: E for span {span} that is not open"));
                }
            }
            "C" => {
                // counter sample: args must be a non-empty object whose
                // values are all numeric (one Perfetto series per key)
                check.counters += 1;
                let args = ev
                    .get("args")
                    .ok_or(format!("event {i}: C without args"))?;
                let fields = match args {
                    Json::Obj(fields) if !fields.is_empty() => fields,
                    _ => {
                        return Err(format!(
                            "event {i}: C args must be a non-empty object"
                        ))
                    }
                };
                for (key, value) in fields {
                    if value.as_num().is_none() {
                        return Err(format!(
                            "event {i}: counter value {key:?} is not numeric"
                        ));
                    }
                }
            }
            "i" | "I" | "M" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    if let Some((span, name)) = open.into_iter().next() {
        return Err(format!("span {span} ({name}) has a B but no E"));
    }
    for (span, parent) in parent_refs {
        if !all_spans.contains(&parent) {
            return Err(format!("span {span}: parent {parent} never opened"));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(spans: &[(&'static str, u32, u64, Option<u64>)]) -> Telemetry {
        // (name, parent, start_us, end_us)
        let mut t = Telemetry::default();
        for &(name, parent, start, end) in spans {
            let id = t.begin_span(name, SpanId(parent), SimTime::from_ticks(start));
            if let Some(e) = end {
                t.end_span(id, SimTime::from_ticks(e), false);
            }
        }
        t
    }

    #[test]
    fn span_ids_and_parents_resolve() {
        let t = store_with(&[
            ("root", 0, 0, Some(100)),
            ("child", 1, 10, Some(50)),
            ("grandchild", 2, 20, Some(30)),
            ("other_root", 0, 5, Some(40)),
        ]);
        assert_eq!(t.children_of(SpanId(1)), vec![SpanId(2)]);
        assert!(t.is_descendant(SpanId(3), SpanId(1)));
        assert!(!t.is_descendant(SpanId(4), SpanId(1)));
        assert_eq!(t.subtree(SpanId(1)), vec![SpanId(1), SpanId(2), SpanId(3)]);
    }

    #[test]
    fn dangling_parent_downgrades_to_root() {
        let mut t = Telemetry::default();
        let id = t.begin_span("orphan", SpanId(99), SimTime::ZERO);
        assert_eq!(t.span(id).unwrap().parent, SpanId::NONE);
    }

    #[test]
    fn first_close_wins() {
        let mut t = Telemetry::default();
        let id = t.begin_span("x", SpanId::NONE, SimTime::ZERO);
        t.end_span(id, SimTime::from_secs(1), true);
        t.end_span(id, SimTime::from_secs(9), false);
        let s = t.span(id).unwrap();
        assert_eq!(s.end, Some(SimTime::from_secs(1)));
        assert!(s.failed);
        assert_eq!(t.histogram("x").unwrap().count(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = DurationHisto::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 3);
        let buckets = h.buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        // 3 µs lands in the (2,4] bucket
        assert!(buckets.iter().any(|&(ub, c)| ub == 4 && c == 1));
        assert!((h.max_secs() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_round_trips_validation() {
        let t = store_with(&[
            ("root", 0, 0, Some(100)),
            ("child_a", 1, 10, Some(40)),
            // overlapping sibling forces a second lane
            ("child_b", 1, 30, Some(90)),
        ]);
        let json = t.to_chrome_trace(SimTime::from_ticks(100));
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.begins, 3);
        assert_eq!(check.ends, 3);
        assert_eq!(check.max_ts_us, 100);
    }

    #[test]
    fn open_spans_are_closed_at_export_time() {
        let t = store_with(&[("open_root", 0, 5, None)]);
        let json = t.to_chrome_trace(SimTime::from_ticks(77));
        let check = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(check.begins, check.ends);
        assert_eq!(check.max_ts_us, 77);
    }

    #[test]
    fn attrs_and_escapes_survive_export() {
        let mut t = Telemetry::default();
        let id = t.begin_span("svc", SpanId::NONE, SimTime::ZERO);
        t.add_attr(id, "service", AttrValue::Str("a\"b\\c\nd".into()));
        t.add_attr(id, "bytes", AttrValue::U64(42));
        t.end_span(id, SimTime::from_secs(1), true);
        let json = t.to_chrome_trace(SimTime::from_secs(1));
        validate_chrome_trace(&json).expect("valid despite escapes");
        assert!(json.contains("\"failed\":true"));
        assert!(json.contains("\"bytes\":42"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // unclosed B
        let unclosed = r#"{"traceEvents":[
            {"name":"x","ph":"B","ts":1,"pid":1,"tid":1,"args":{"span":1,"parent":0}}
        ]}"#;
        assert!(validate_chrome_trace(unclosed).unwrap_err().contains("no E"));
        // non-monotone ts
        let backwards = r#"{"traceEvents":[
            {"name":"x","ph":"B","ts":10,"pid":1,"tid":1,"args":{"span":1,"parent":0}},
            {"name":"x","ph":"E","ts":5,"pid":1,"tid":1,"args":{"span":1}}
        ]}"#;
        assert!(validate_chrome_trace(backwards).unwrap_err().contains("ts"));
        // dangling parent
        let dangling = r#"{"traceEvents":[
            {"name":"x","ph":"B","ts":1,"pid":1,"tid":1,"args":{"span":1,"parent":7}},
            {"name":"x","ph":"E","ts":2,"pid":1,"tid":1,"args":{"span":1}}
        ]}"#;
        assert!(validate_chrome_trace(dangling)
            .unwrap_err()
            .contains("parent 7"));
    }

    #[test]
    fn json_parser_is_strict() {
        assert!(parse_json(r#"{"a":1}"#).is_ok());
        assert!(parse_json(r#"{"a":1} extra"#).is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json(r#"["unterminated"#).is_err());
        let v = parse_json(r#"{"s":"q\"\\\n","n":-1.5e2,"b":true,"z":null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\\\n"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(-150.0));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("z"), Some(&Json::Null));
    }

    #[test]
    fn span_tree_renders_nesting_totals_and_failure() {
        let mut t = store_with(&[("invoke", 0, 0, None), ("auth", 1, 10, Some(2_000_000))]);
        t.end_span(SpanId(1), SimTime::from_secs(5), true);
        t.counters.insert("polls", 3);
        let text = t.span_tree(SimTime::from_secs(5));
        assert!(text.contains("invoke"));
        assert!(text.contains("  auth"));
        assert!(text.contains("FAILED"));
        assert!(text.contains("per-stage totals"));
        assert!(text.contains("polls"));
    }

    #[test]
    fn span_tree_totals_show_quantile_columns() {
        let t = store_with(&[("stage", 0, 0, Some(1_000_000))]);
        let text = t.span_tree(SimTime::from_secs(1));
        assert!(text.contains("p50_s"), "{text}");
        assert!(text.contains("p99_s"), "{text}");
        assert!(!text.contains("mean_s"), "{text}");
    }

    #[test]
    fn histogram_quantile_interpolates_and_clamps() {
        let mut h = DurationHisto::default();
        for ms in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 > 0.0 && p50 < 0.1, "p50 = {p50}");
        assert!((h.quantile(1.0) - 1.0).abs() < 1e-9, "q1 clamps to max");
        assert!((p99 - 1.0).abs() < 0.6, "p99 = {p99} near the outlier");
        assert!(p50 <= h.quantile(0.9), "monotone in q");
        // degenerate cases
        assert_eq!(DurationHisto::default().quantile(0.99), 0.0);
        let mut one = DurationHisto::default();
        one.record(Duration::from_millis(7));
        assert!((one.quantile(0.5) - 0.007).abs() < 1e-9);
        assert!((one.quantile(0.0) - one.quantile(1.0)).abs() < 1e-2);
    }

    #[test]
    fn histogram_quantile_exact_within_single_value() {
        // all mass on one value: every quantile clamps to it
        let mut h = DurationHisto::default();
        for _ in 0..100 {
            h.record(Duration::from_micros(1024));
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v <= 1024e-6 + 1e-12, "q={q} gave {v}");
            assert!(v > 512e-6, "q={q} gave {v} below the bucket");
        }
    }

    #[test]
    fn counter_tracks_export_and_validate() {
        let mut t = store_with(&[("op", 0, 0, Some(50))]);
        t.counters.insert("reqs", 2);
        t.counter_samples.push((SimTime::from_ticks(10), "reqs", 1));
        t.counter_samples.push((SimTime::from_ticks(40), "reqs", 2));
        let json = t.to_chrome_trace(SimTime::from_ticks(50));
        let check = validate_chrome_trace(&json).expect("valid trace with counters");
        assert_eq!(check.counters, 2);
        assert_eq!(check.begins, 1);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":2"));
    }

    #[test]
    fn validator_checks_counter_events() {
        // C without args
        let no_args = r#"{"traceEvents":[
            {"name":"reqs","ph":"C","ts":1,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(no_args).unwrap_err().contains("args"));
        // C with empty args object
        let empty = r#"{"traceEvents":[
            {"name":"reqs","ph":"C","ts":1,"pid":1,"tid":1,"args":{}}
        ]}"#;
        assert!(validate_chrome_trace(empty)
            .unwrap_err()
            .contains("non-empty"));
        // C with a non-numeric value
        let bad = r#"{"traceEvents":[
            {"name":"reqs","ph":"C","ts":1,"pid":1,"tid":1,"args":{"value":"high"}}
        ]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("not numeric"));
        // well-formed counter sample passes and is counted
        let good = r#"{"traceEvents":[
            {"name":"reqs","ph":"C","ts":1,"pid":1,"tid":1,"args":{"value":3}}
        ]}"#;
        assert_eq!(validate_chrome_trace(good).unwrap().counters, 1);
    }
}
