//! Virtual time: instants and durations with microsecond resolution.
//!
//! All simulation timing uses integral microseconds so that event ordering
//! is exact and runs are reproducible across platforms; floating-point
//! seconds only appear at the edges (rate computations, report rendering).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second, the internal tick resolution.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant on the virtual clock (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Instant from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Instant from raw microsecond ticks.
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Span from an earlier instant to this one; zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable span; used as an "infinite timeout" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Span from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * TICKS_PER_SEC)
    }

    /// Span from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * (TICKS_PER_SEC / 1000))
    }

    /// Span from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Span from fractional seconds (negative clamps to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        Duration((secs.max(0.0) * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True for the zero span.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer-scaled span (`self * n`), saturating.
    pub fn saturating_mul(self, n: u64) -> Duration {
        Duration(self.0.saturating_mul(n))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(5).as_secs_f64(), 5.0);
        assert_eq!(Duration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(Duration::from_micros(7).ticks(), 7);
        assert_eq!(Duration::from_secs_f64(0.25), Duration::from_millis(250));
    }

    #[test]
    fn negative_f64_clamps_to_zero() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(SimTime::from_secs_f64(-0.5), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + Duration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(9), Duration::from_secs(6));
        // saturating subtraction: earlier.since(later) is zero
        assert_eq!(SimTime::from_secs(1).since(SimTime::from_secs(2)), Duration::ZERO);
    }

    #[test]
    fn saturation_at_max() {
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
        assert_eq!(Duration::MAX + Duration::from_secs(1), Duration::MAX);
        assert_eq!(Duration::MAX.saturating_mul(3), Duration::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(Duration::from_millis(999) < Duration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis_for_test(1234)), "1.234s");
        assert_eq!(format!("{}", Duration::from_millis(250)), "0.250s");
    }

    impl SimTime {
        fn from_millis_for_test(ms: u64) -> SimTime {
            SimTime::ZERO + Duration::from_millis(ms)
        }
    }
}
