//! The event loop: virtual clock + stable-ordered pending-event queue.
//!
//! Events are boxed `FnOnce(&mut Sim)` closures. Components live outside the
//! simulator (typically behind `Rc<RefCell<..>>`) and capture themselves in
//! the closures they schedule; the simulator owns only time, the queue, the
//! metric [`Recorder`] and the seeded [`Rng`]. Two events scheduled for the
//! same instant fire in scheduling order (FIFO tie-break), which makes runs
//! reproducible.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::metrics::Recorder;
use crate::rng::Rng;
use crate::time::{Duration, SimTime};

/// A pending event: a one-shot closure over the simulator.
pub type Event = Box<dyn FnOnce(&mut Sim)>;

/// Hasher for the pending-id set. Seqs are unique counters, so a single
/// multiplicative mix replaces SipHash on the per-event hot path.
#[derive(Default, Clone)]
struct SeqHasher(u64);

impl std::hash::Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type SeqSet = HashSet<u64, std::hash::BuildHasherDefault<SeqHasher>>;

/// Handle to a scheduled event, usable with [`Sim::cancel_event`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled {
    at: SimTime,
    seq: u64,
    f: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulator.
pub struct Sim {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled>,
    /// Seqs of queued events that have neither fired nor been cancelled.
    /// Membership is the single source of truth for liveness: ids leave the
    /// set on cancel *or* on pop, so a cancel after firing is a clean `false`
    /// and nothing accumulates across a run.
    pending_ids: SeqSet,
    recorder: Recorder,
    rng: Rng,
    trace: Option<Vec<(SimTime, String)>>,
}

impl Sim {
    /// New simulator at `t = 0` with the default 3-second metric buckets
    /// (the paper's sampling interval).
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
            pending_ids: SeqSet::default(),
            recorder: Recorder::new(Duration::from_secs(3)),
            rng: Rng::new(seed),
            trace: None,
        }
    }

    /// New simulator with a custom metric sampling interval.
    pub fn with_sample_interval(seed: u64, interval: Duration) -> Self {
        let mut sim = Sim::new(seed);
        sim.recorder = Recorder::new(interval);
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seeded random stream.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The metric recorder.
    pub fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Read-only view of the recorder (for report generation after a run).
    pub fn recorder_ref(&self) -> &Recorder {
        &self.recorder
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule<F>(&mut self, delay: Duration, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at an absolute instant. Instants in the past run "now"
    /// (the clock never moves backwards).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pending_ids.insert(seq);
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Drop a pending event before it fires. Returns `false` if it already
    /// ran, was already cancelled, or never existed.
    pub fn cancel_event(&mut self, id: EventId) -> bool {
        self.pending_ids.remove(&id.0)
    }

    /// Execute the next pending event, advancing the clock to it. Returns
    /// `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if !self.pending_ids.remove(&ev.seq) {
                continue; // cancelled: drop silently, don't advance time
            }
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.executed += 1;
            (ev.f)(self);
            return true;
        }
        false
    }

    /// Run until the queue drains. Returns the number of events executed by
    /// this call.
    pub fn run(&mut self) -> u64 {
        let before = self.executed;
        while self.step() {}
        self.executed - before
    }

    /// Run every event scheduled at or before `deadline`, then advance the
    /// clock to exactly `deadline`. Later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.executed;
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            // pop exactly one due entry (step()'s skip-loop could otherwise
            // run past the deadline when the head is cancelled)
            let ev = self.queue.pop().expect("peeked entry present");
            if !self.pending_ids.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.executed += 1;
            (ev.f)(self);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.executed - before
    }

    /// Turn on event tracing (used by tests and debugging sessions).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Append a trace line if tracing is enabled.
    pub fn trace(&mut self, msg: impl FnOnce() -> String) {
        if let Some(t) = self.trace.as_mut() {
            t.push((self.now, msg()));
        }
    }

    /// The trace collected so far (empty when tracing is off).
    pub fn trace_lines(&self) -> &[(SimTime, String)] {
        self.trace.as_deref().unwrap_or(&[])
    }

    #[cfg(test)]
    fn live_ids(&self) -> usize {
        self.pending_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for &d in &[5u64, 1, 3, 2, 4] {
            let log = log.clone();
            sim.schedule(Duration::from_secs(d), move |sim| {
                log.borrow_mut().push(sim.now().as_secs_f64() as u64);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn same_instant_fifo_tiebreak() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            sim.schedule(Duration::from_secs(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_from_event() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        sim.schedule(Duration::from_secs(1), move |sim| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            sim.schedule(Duration::from_secs(1), move |sim| {
                *h2.borrow_mut() += 1;
                assert_eq!(sim.now(), SimTime::from_secs(2));
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Sim::new(0);
        let fired_at = Rc::new(RefCell::new(SimTime::ZERO));
        let fa = fired_at.clone();
        sim.schedule(Duration::from_secs(10), move |sim| {
            let fa2 = fa.clone();
            // Deliberately in the "past".
            sim.schedule_at(SimTime::from_secs(5), move |sim| {
                *fa2.borrow_mut() = sim.now();
            });
        });
        sim.run();
        assert_eq!(*fired_at.borrow(), SimTime::from_secs(10));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(0);
        let count = Rc::new(RefCell::new(0));
        for d in 1..=10u64 {
            let c = count.clone();
            sim.schedule(Duration::from_secs(d), move |_| *c.borrow_mut() += 1);
        }
        let n = sim.run_until(SimTime::from_secs(4));
        assert_eq!(n, 4);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        assert_eq!(sim.pending(), 6);
        // the remainder still runs
        sim.run();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn run_until_advances_clock_even_with_no_events() {
        let mut sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(42));
        assert_eq!(sim.now(), SimTime::from_secs(42));
    }

    #[test]
    fn executed_counter() {
        let mut sim = Sim::new(0);
        for _ in 0..7 {
            sim.schedule(Duration::from_secs(1), |_| {});
        }
        assert_eq!(sim.run(), 7);
        assert_eq!(sim.events_executed(), 7);
    }

    #[test]
    fn cancelled_event_never_fires_and_clock_skips_it() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let id = sim.schedule(Duration::from_secs(100), move |_| *f.borrow_mut() = true);
        sim.schedule(Duration::from_secs(1), |_| {});
        assert!(sim.cancel_event(id));
        sim.run();
        assert!(!*fired.borrow());
        // the queue drained at the earlier event; the cancelled one did not
        // drag the clock to t=100
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        let mut sim = Sim::new(0);
        let id = sim.schedule(Duration::from_secs(1), |_| {});
        assert!(sim.cancel_event(id));
        assert!(!sim.cancel_event(id), "second cancel is a no-op");
        // ids never handed out are rejected outright
        let fake = {
            let probe = sim.schedule(Duration::from_secs(2), |_| {});
            sim.cancel_event(probe);
            probe
        };
        let _ = fake;
        sim.run();
    }

    #[test]
    fn cancelling_one_of_many_same_instant_keeps_fifo_of_rest() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut ids = Vec::new();
        for i in 0..5 {
            let log = log.clone();
            ids.push(sim.schedule(Duration::from_secs(1), move |_| log.borrow_mut().push(i)));
        }
        sim.cancel_event(ids[2]);
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn cancel_after_fire_returns_false_and_leaks_nothing() {
        let mut sim = Sim::new(0);
        let id = sim.schedule(Duration::from_secs(1), |_| {});
        sim.run();
        // regression: this used to return true and permanently tombstone the
        // id, so a fired event "cancelled" successfully and the set grew
        // without bound
        assert!(!sim.cancel_event(id), "event already ran");
        assert!(!sim.cancel_event(id), "still false on repeat");
        assert_eq!(sim.live_ids(), 0, "no tracking state left behind");
    }

    #[test]
    fn cancel_never_scheduled_id_leaks_nothing() {
        let mut sim = Sim::new(0);
        let real = sim.schedule(Duration::from_secs(1), |_| {});
        assert!(sim.cancel_event(real));
        assert!(!sim.cancel_event(real));
        assert_eq!(sim.live_ids(), 0);
        sim.run();
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn run_until_ignores_cancelled_head() {
        let mut sim = Sim::new(0);
        let id = sim.schedule(Duration::from_secs(5), |_| {});
        sim.schedule(Duration::from_secs(20), |_| {});
        sim.cancel_event(id);
        let n = sim.run_until(SimTime::from_secs(10));
        assert_eq!(n, 0, "only the cancelled event was due");
        assert_eq!(sim.now(), SimTime::from_secs(10));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(20));
    }

    #[test]
    fn trace_collects_when_enabled() {
        let mut sim = Sim::new(0);
        sim.enable_trace();
        sim.schedule(Duration::from_secs(2), |sim| sim.trace(|| "hello".into()));
        sim.run();
        assert_eq!(sim.trace_lines().len(), 1);
        assert_eq!(sim.trace_lines()[0].0, SimTime::from_secs(2));
        assert_eq!(sim.trace_lines()[0].1, "hello");
    }
}
