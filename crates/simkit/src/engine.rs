//! The event loop: virtual clock + stable-ordered pending-event queue.
//!
//! Events are boxed `FnOnce(&mut Sim)` closures. Components live outside the
//! simulator (typically behind `Rc<RefCell<..>>`) and capture themselves in
//! the closures they schedule; the simulator owns only time, the queue, the
//! metric [`Recorder`] and the seeded [`Rng`]. Two events scheduled for the
//! same instant fire in scheduling order (FIFO tie-break), which makes runs
//! reproducible.
//!
//! The queue is a hierarchical timer wheel ([`crate::wheel`]): push and pop
//! are O(1) amortized instead of the binary heap's O(log n), and a whole
//! tick's worth of simultaneous events drains in one slot scan, which
//! [`Sim::run`] exploits to execute same-tick batches under a single clock
//! update. Pop order is exactly the old heap's `(time, seq)` total order —
//! the golden CSVs of every bench tier are byte-identical either way.

use std::collections::HashSet;

use crate::metrics::Recorder;
use crate::rng::Rng;
use crate::telemetry::{AttrValue, KernelProfile, ServerBusy, SpanId, Telemetry};
use crate::time::{Duration, SimTime};
use crate::wheel::{Entry, TimerWheel};

/// A pending event: a one-shot closure over the simulator.
pub type Event = Box<dyn FnOnce(&mut Sim)>;

/// Hasher for the pending-id set. Seqs are unique counters, so a single
/// multiplicative mix replaces SipHash on the per-event hot path.
#[derive(Default, Clone)]
struct SeqHasher(u64);

impl std::hash::Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type SeqSet = HashSet<u64, std::hash::BuildHasherDefault<SeqHasher>>;

/// Handle to a scheduled event, usable with [`Sim::cancel_event`].
///
/// ## Live-id-set semantics
///
/// An `EventId` wraps the event's scheduling sequence number, and the
/// simulator keeps a *live-id set* of sequence numbers that have neither
/// fired nor been cancelled. That set is the single source of truth for
/// liveness:
///
/// * `cancel_event` removes the id from the set and returns whether it was
///   still a member — so cancelling an id whose event already **fired**
///   returns `false` (the pop removed it), as does cancelling twice.
/// * Cancelled entries stay physically parked in the timer wheel until
///   their instant comes up, at which point they are skipped without
///   advancing the clock; no tombstone state survives a run.
/// * Sequence numbers are never reused, so a stale `EventId` can never
///   alias a newer event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// The discrete-event simulator.
pub struct Sim {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: TimerWheel<Event>,
    /// Seqs of queued events that have neither fired nor been cancelled.
    /// Membership is the single source of truth for liveness: ids leave the
    /// set on cancel *or* on pop, so a cancel after firing is a clean `false`
    /// and nothing accumulates across a run.
    pending_ids: SeqSet,
    recorder: Recorder,
    rng: Rng,
    /// Structured telemetry store; `None` until `enable_telemetry`. Kept
    /// boxed so the disabled case costs one pointer on `Sim` and one null
    /// check per span/counter call.
    telemetry: Option<Box<Telemetry>>,
    /// Ambient causal parent for `span_begin` (see `set_span_parent`).
    span_parent: SpanId,
    /// Deepest the queue ever got (kernel self-profiling; a compare+store
    /// per push, cheap enough to keep always-on).
    queue_high_water: usize,
}

impl Sim {
    /// New simulator at `t = 0` with the default 3-second metric buckets
    /// (the paper's sampling interval).
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: TimerWheel::new(),
            pending_ids: SeqSet::default(),
            recorder: Recorder::new(Duration::from_secs(3)),
            rng: Rng::new(seed),
            telemetry: None,
            span_parent: SpanId::NONE,
            queue_high_water: 0,
        }
    }

    /// New simulator with a custom metric sampling interval.
    pub fn with_sample_interval(seed: u64, interval: Duration) -> Self {
        let mut sim = Sim::new(seed);
        sim.recorder = Recorder::new(interval);
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seeded random stream.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The metric recorder.
    pub fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Read-only view of the recorder (for report generation after a run).
    pub fn recorder_ref(&self) -> &Recorder {
        &self.recorder
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending — *live* events only. Cancelled
    /// events lazily parked in the queue until their instant comes up do
    /// not count (they used to, which overcounted after any cancel).
    pub fn pending(&self) -> usize {
        self.pending_ids.len()
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule<F>(&mut self, delay: Duration, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at an absolute instant. Instants in the past run "now"
    /// (the clock never moves backwards).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pending_ids.insert(seq);
        self.queue.push(at.ticks(), seq, Box::new(f));
        if self.queue.len() > self.queue_high_water {
            self.queue_high_water = self.queue.len();
        }
        EventId(seq)
    }

    /// Schedule `f` to run after `delay`, counting its execution under
    /// `label` in [`Sim::profile`]'s events-by-label table.
    ///
    /// With telemetry disabled this is exactly [`Sim::schedule`] — same
    /// sequence allocation, same closure — so enabling telemetry cannot
    /// perturb event ordering. Cancelled events are never counted: the
    /// label is bumped at fire time, not at scheduling time.
    pub fn schedule_labeled<F>(&mut self, delay: Duration, label: &'static str, f: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        if self.telemetry.is_none() {
            return self.schedule(delay, f);
        }
        self.schedule(delay, move |sim| {
            if let Some(t) = sim.telemetry.as_mut() {
                *t.labels.entry(label).or_insert(0) += 1;
            }
            f(sim)
        })
    }

    /// Drop a pending event before it fires. Returns `false` if it already
    /// ran, was already cancelled, or never existed.
    pub fn cancel_event(&mut self, id: EventId) -> bool {
        self.pending_ids.remove(&id.0)
    }

    /// Execute the next pending event, advancing the clock to it. Returns
    /// `false` when the queue is empty. Cancelled events are dropped
    /// silently without advancing time.
    pub fn step(&mut self) -> bool {
        let next = {
            let ids = &self.pending_ids;
            self.queue.pop_next(u64::MAX, |seq| ids.contains(&seq))
        };
        match next {
            Some(ev) => {
                self.pending_ids.remove(&ev.seq);
                debug_assert!(ev.at >= self.now.ticks(), "event queue went backwards");
                self.now = SimTime::from_ticks(ev.at);
                self.executed += 1;
                (ev.item)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains. Returns the number of events executed by
    /// this call.
    ///
    /// Events are executed in same-tick batches: the wheel drains every
    /// event sharing the next instant in one slot scan, and the clock is
    /// updated once per instant rather than once per event. The execution
    /// order is identical to repeated [`Sim::step`] — a batch member that
    /// cancels a later member suppresses it, and one that schedules more
    /// work at the same instant extends the batch.
    pub fn run(&mut self) -> u64 {
        self.drain_batched(u64::MAX)
    }

    /// Run every event scheduled at or before `deadline`, then advance the
    /// clock to exactly `deadline`. Later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let n = self.drain_batched(deadline.ticks());
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Shared batched drain: execute every live event due at or before
    /// `limit` (in `(time, seq)` order), returning how many ran.
    fn drain_batched(&mut self, limit: u64) -> u64 {
        let before = self.executed;
        let mut batch: Vec<Entry<Event>> = Vec::new();
        loop {
            let tick = {
                let ids = &self.pending_ids;
                self.queue.pop_tick_batch(limit, |seq| ids.contains(&seq), &mut batch)
            };
            let Some(tick) = tick else { break };
            debug_assert!(tick >= self.now.ticks(), "event queue went backwards");
            self.now = SimTime::from_ticks(tick);
            for ev in batch.drain(..) {
                // settle against the live-id set per event: an earlier
                // batch member may have cancelled a later one
                if self.pending_ids.remove(&ev.seq) {
                    self.executed += 1;
                    (ev.item)(self);
                }
            }
        }
        self.executed - before
    }

    // -- telemetry ----------------------------------------------------------

    /// Turn on structured telemetry (spans, counters, histograms, labelled
    /// events). Idempotent. Until this is called every span/counter entry
    /// point is a single null check returning immediately.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::default());
        }
    }

    /// Whether telemetry is collecting.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The telemetry store (`None` until [`Sim::enable_telemetry`]).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Open a span named `name` at the current instant, parented to the
    /// ambient parent (see [`Sim::set_span_parent`]). Returns
    /// [`SpanId::NONE`] when telemetry is disabled.
    pub fn span_begin(&mut self, name: &'static str) -> SpanId {
        match self.telemetry.as_mut() {
            None => SpanId::NONE,
            Some(t) => t.begin_span(name, self.span_parent, self.now),
        }
    }

    /// Open a span with an explicit parent (use when the parent handle is
    /// in scope; otherwise prefer the ambient mechanism).
    pub fn span_child(&mut self, name: &'static str, parent: SpanId) -> SpanId {
        match self.telemetry.as_mut() {
            None => SpanId::NONE,
            Some(t) => t.begin_span(name, parent, self.now),
        }
    }

    /// Attach a key–value attribute to an open (or closed) span. No-op on
    /// `SpanId::NONE`.
    pub fn span_attr(&mut self, id: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(t) = self.telemetry.as_mut() {
            t.add_attr(id, key, value.into());
        }
    }

    /// Close a span at the current instant, recording its duration into the
    /// per-stage histogram. Idempotent: the first close wins, so racing
    /// finalizers (watchdog vs. late completion) are safe.
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.now;
        if let Some(t) = self.telemetry.as_mut() {
            t.end_span(id, now, false);
        }
    }

    /// Close a span as failed, attaching the error text as an `error`
    /// attribute. Same first-close-wins rule as [`Sim::span_end`].
    pub fn span_fail(&mut self, id: SpanId, error: &str) {
        let now = self.now;
        if let Some(t) = self.telemetry.as_mut() {
            if t.span(id).is_some_and(|s| s.end.is_none()) {
                t.add_attr(id, "error", AttrValue::Str(error.to_owned()));
            }
            t.end_span(id, now, true);
        }
    }

    /// Set the ambient causal parent that [`Sim::span_begin`] attaches new
    /// spans to, returning the previous value so callers can restore it.
    ///
    /// Instrumented call sites set the ambient parent synchronously around
    /// a callee (`let prev = sim.set_span_parent(span); callee(sim, ..);
    /// sim.set_span_parent(prev);`) so causality threads through the
    /// continuation-passing pipeline without changing any signatures. Works
    /// (as a no-op chain of `NONE`) while telemetry is disabled.
    pub fn set_span_parent(&mut self, parent: SpanId) -> SpanId {
        std::mem::replace(&mut self.span_parent, parent)
    }

    /// The current ambient parent.
    pub fn span_parent(&self) -> SpanId {
        self.span_parent
    }

    /// Bump a monotonic counter by `delta` (no-op while disabled). Each
    /// bump also appends a `(now, name, cumulative)` sample so the Chrome
    /// trace exporter can render counter tracks.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        let now = self.now;
        if let Some(t) = self.telemetry.as_mut() {
            let total = t.counters.entry(name).or_insert(0);
            *total += delta;
            let total = *total;
            t.counter_samples.push((now, name, total));
        }
    }

    /// Record a duration observation under `name` without opening a span
    /// (no-op while disabled).
    pub fn observe_duration(&mut self, name: &'static str, d: Duration) {
        if let Some(t) = self.telemetry.as_mut() {
            t.histos.entry(name).or_default().record(d);
        }
    }

    /// Kernel self-profiling snapshot: events executed/pending, queue depth
    /// high-water, executed counts per `schedule_labeled` label, and
    /// per-server busy/utilization rollups derived from the recorder's
    /// `*.busy` series.
    pub fn profile(&self) -> KernelProfile {
        let now_secs = self.now.as_secs_f64();
        let server_busy = self
            .recorder
            .keys()
            .filter(|k| k.ends_with(".busy"))
            .map(|k| {
                let busy_secs = self.recorder.total(k);
                ServerBusy {
                    key: k.to_owned(),
                    busy_secs,
                    utilization: if now_secs > 0.0 { busy_secs / now_secs } else { 0.0 },
                }
            })
            .collect();
        KernelProfile {
            events_executed: self.executed,
            pending_events: self.pending_ids.len(),
            queue_depth_high_water: self.queue_high_water,
            events_by_label: self
                .telemetry
                .as_ref()
                .map(|t| {
                    t.labels
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), *v))
                        .collect()
                })
                .unwrap_or_default(),
            server_busy,
        }
    }

    /// Export collected spans as Chrome trace-event JSON (empty trace when
    /// telemetry is disabled). See [`Telemetry::to_chrome_trace`].
    pub fn export_chrome_trace(&self) -> String {
        match self.telemetry.as_deref() {
            Some(t) => t.to_chrome_trace(self.now),
            None => "{\"traceEvents\":[]}\n".to_owned(),
        }
    }

    /// Export collected spans as a plain-text causal tree with per-stage
    /// totals. See [`Telemetry::span_tree`].
    pub fn span_summary(&self) -> String {
        match self.telemetry.as_deref() {
            Some(t) => t.span_tree(self.now),
            None => String::from("telemetry disabled\n"),
        }
    }

    // -- string-trace compat shim -------------------------------------------

    /// Turn on event tracing. Compat alias for [`Sim::enable_telemetry`]:
    /// the old string log now lives inside the telemetry store as instant
    /// events.
    pub fn enable_trace(&mut self) {
        self.enable_telemetry();
    }

    /// Append a trace line if telemetry is enabled. The closure is only
    /// evaluated when collecting. Lines export as Chrome-trace `"i"`
    /// (instant) events alongside the spans.
    pub fn trace(&mut self, msg: impl FnOnce() -> String) {
        let now = self.now;
        if let Some(t) = self.telemetry.as_mut() {
            let line = msg();
            t.events.push((now, line));
        }
    }

    /// The trace lines collected so far (empty when telemetry is off).
    pub fn trace_lines(&self) -> &[(SimTime, String)] {
        self.telemetry.as_deref().map(|t| t.events()).unwrap_or(&[])
    }

    #[cfg(test)]
    fn live_ids(&self) -> usize {
        self.pending_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for &d in &[5u64, 1, 3, 2, 4] {
            let log = log.clone();
            sim.schedule(Duration::from_secs(d), move |sim| {
                log.borrow_mut().push(sim.now().as_secs_f64() as u64);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn same_instant_fifo_tiebreak() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            sim.schedule(Duration::from_secs(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_from_event() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        sim.schedule(Duration::from_secs(1), move |sim| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            sim.schedule(Duration::from_secs(1), move |sim| {
                *h2.borrow_mut() += 1;
                assert_eq!(sim.now(), SimTime::from_secs(2));
            });
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Sim::new(0);
        let fired_at = Rc::new(RefCell::new(SimTime::ZERO));
        let fa = fired_at.clone();
        sim.schedule(Duration::from_secs(10), move |sim| {
            let fa2 = fa.clone();
            // Deliberately in the "past".
            sim.schedule_at(SimTime::from_secs(5), move |sim| {
                *fa2.borrow_mut() = sim.now();
            });
        });
        sim.run();
        assert_eq!(*fired_at.borrow(), SimTime::from_secs(10));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(0);
        let count = Rc::new(RefCell::new(0));
        for d in 1..=10u64 {
            let c = count.clone();
            sim.schedule(Duration::from_secs(d), move |_| *c.borrow_mut() += 1);
        }
        let n = sim.run_until(SimTime::from_secs(4));
        assert_eq!(n, 4);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        assert_eq!(sim.pending(), 6);
        // the remainder still runs
        sim.run();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn run_until_advances_clock_even_with_no_events() {
        let mut sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(42));
        assert_eq!(sim.now(), SimTime::from_secs(42));
    }

    #[test]
    fn executed_counter() {
        let mut sim = Sim::new(0);
        for _ in 0..7 {
            sim.schedule(Duration::from_secs(1), |_| {});
        }
        assert_eq!(sim.run(), 7);
        assert_eq!(sim.events_executed(), 7);
    }

    #[test]
    fn cancelled_event_never_fires_and_clock_skips_it() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let id = sim.schedule(Duration::from_secs(100), move |_| *f.borrow_mut() = true);
        sim.schedule(Duration::from_secs(1), |_| {});
        assert!(sim.cancel_event(id));
        sim.run();
        assert!(!*fired.borrow());
        // the queue drained at the earlier event; the cancelled one did not
        // drag the clock to t=100
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn pending_reports_live_events_not_parked_ones() {
        // regression: pending() used to return the physical queue length,
        // which counts cancelled events still lazily parked in the queue
        let mut sim = Sim::new(0);
        let mut ids = Vec::new();
        for d in 1..=3u64 {
            ids.push(sim.schedule(Duration::from_secs(d), |_| {}));
        }
        assert!(sim.cancel_event(ids[1]));
        assert_eq!(sim.pending(), 2, "cancelled event must not count");
        assert_eq!(sim.run(), 2);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn same_tick_batch_matches_step_semantics() {
        // run()'s batched drain must be indistinguishable from step():
        // same-tick follow-ups extend the batch, in-batch cancels suppress
        let build = |sim: &mut Sim, log: &Rc<RefCell<Vec<u32>>>| {
            let victim: Rc<RefCell<Option<EventId>>> = Rc::new(RefCell::new(None));
            for i in 0..4u32 {
                let log = log.clone();
                let victim2 = victim.clone();
                let id = sim.schedule(Duration::from_secs(1), move |sim| {
                    log.borrow_mut().push(i);
                    if i == 0 {
                        // cancel a later member of the very batch running now
                        let v = victim2.borrow().expect("victim scheduled");
                        assert!(sim.cancel_event(v));
                        // and extend the batch with a same-instant follow-up
                        let log = log.clone();
                        sim.schedule(Duration::ZERO, move |_| log.borrow_mut().push(99));
                    }
                });
                if i == 2 {
                    *victim.borrow_mut() = Some(id);
                }
            }
            let log = log.clone();
            sim.schedule(Duration::from_millis(500), move |_| log.borrow_mut().push(50));
        };
        let run_log = {
            let mut sim = Sim::new(0);
            let log = Rc::new(RefCell::new(Vec::new()));
            build(&mut sim, &log);
            sim.run();
            let out = log.borrow().clone();
            out
        };
        let step_log = {
            let mut sim = Sim::new(0);
            let log = Rc::new(RefCell::new(Vec::new()));
            build(&mut sim, &log);
            while sim.step() {}
            let out = log.borrow().clone();
            out
        };
        assert_eq!(run_log, vec![50, 0, 1, 3, 99]);
        assert_eq!(run_log, step_log);
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        let mut sim = Sim::new(0);
        let id = sim.schedule(Duration::from_secs(1), |_| {});
        assert!(sim.cancel_event(id));
        assert!(!sim.cancel_event(id), "second cancel is a no-op");
        // ids never handed out are rejected outright
        let fake = {
            let probe = sim.schedule(Duration::from_secs(2), |_| {});
            sim.cancel_event(probe);
            probe
        };
        let _ = fake;
        sim.run();
    }

    #[test]
    fn cancelling_one_of_many_same_instant_keeps_fifo_of_rest() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut ids = Vec::new();
        for i in 0..5 {
            let log = log.clone();
            ids.push(sim.schedule(Duration::from_secs(1), move |_| log.borrow_mut().push(i)));
        }
        sim.cancel_event(ids[2]);
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn cancel_after_fire_returns_false_and_leaks_nothing() {
        let mut sim = Sim::new(0);
        let id = sim.schedule(Duration::from_secs(1), |_| {});
        sim.run();
        // regression: this used to return true and permanently tombstone the
        // id, so a fired event "cancelled" successfully and the set grew
        // without bound
        assert!(!sim.cancel_event(id), "event already ran");
        assert!(!sim.cancel_event(id), "still false on repeat");
        assert_eq!(sim.live_ids(), 0, "no tracking state left behind");
    }

    #[test]
    fn cancel_never_scheduled_id_leaks_nothing() {
        let mut sim = Sim::new(0);
        let real = sim.schedule(Duration::from_secs(1), |_| {});
        assert!(sim.cancel_event(real));
        assert!(!sim.cancel_event(real));
        assert_eq!(sim.live_ids(), 0);
        sim.run();
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn run_until_ignores_cancelled_head() {
        let mut sim = Sim::new(0);
        let id = sim.schedule(Duration::from_secs(5), |_| {});
        sim.schedule(Duration::from_secs(20), |_| {});
        sim.cancel_event(id);
        let n = sim.run_until(SimTime::from_secs(10));
        assert_eq!(n, 0, "only the cancelled event was due");
        assert_eq!(sim.now(), SimTime::from_secs(10));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(20));
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let mut sim = Sim::new(0);
        let id = sim.span_begin("x");
        assert!(id.is_none());
        sim.span_attr(id, "k", 1u64);
        sim.span_end(id);
        sim.counter_add("c", 1);
        assert!(sim.telemetry().is_none());
        assert_eq!(sim.export_chrome_trace(), "{\"traceEvents\":[]}\n");
    }

    #[test]
    fn spans_nest_via_ambient_parent() {
        let mut sim = Sim::new(0);
        sim.enable_telemetry();
        let root = sim.span_begin("root");
        let prev = sim.set_span_parent(root);
        sim.schedule(Duration::from_secs(1), move |sim| {
            // ambient parent was captured at begin time, not here: emulate a
            // callee opening its own span under the still-set parent
            let child = sim.span_begin("child");
            sim.span_end(child);
        });
        // restoring before run(): the scheduled event must NOT see `root`
        // as ambient any more, so instrumented code sets the parent inside
        // the callee path instead. Re-set it around run for this test.
        sim.set_span_parent(prev);
        sim.set_span_parent(root);
        sim.run();
        sim.set_span_parent(prev);
        sim.span_end(root);
        let t = sim.telemetry().unwrap();
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[1].parent.raw(), 1);
    }

    #[test]
    fn span_fail_attaches_error_and_first_close_wins() {
        let mut sim = Sim::new(0);
        sim.enable_telemetry();
        let id = sim.span_begin("op");
        sim.span_fail(id, "boom");
        sim.span_end(id); // loses the race
        let s = sim.telemetry().unwrap().span(id).unwrap();
        assert!(s.failed);
        assert_eq!(s.attr("error").map(|v| v.to_string()), Some("boom".into()));
    }

    #[test]
    fn labeled_events_count_executions_not_schedules() {
        let mut sim = Sim::new(0);
        sim.enable_telemetry();
        for _ in 0..3 {
            sim.schedule_labeled(Duration::from_secs(1), "tick", |_| {});
        }
        let cancelled = sim.schedule_labeled(Duration::from_secs(1), "tick", |_| {});
        sim.cancel_event(cancelled);
        sim.run();
        let labels: Vec<_> = sim.telemetry().unwrap().labels().collect();
        assert_eq!(labels, vec![("tick", 3)]);
        let profile = sim.profile();
        assert_eq!(profile.events_by_label, vec![("tick".to_string(), 3)]);
    }

    #[test]
    fn labeled_schedule_allocates_same_seq_when_disabled() {
        // determinism guard: schedule_labeled must not change event ids
        let mut plain = Sim::new(0);
        let a = plain.schedule(Duration::from_secs(1), |_| {});
        let mut labeled = Sim::new(0);
        let b = labeled.schedule_labeled(Duration::from_secs(1), "x", |_| {});
        assert_eq!(a, b);
    }

    #[test]
    fn profile_reports_high_water_and_busy_rollups() {
        let mut sim = Sim::new(0);
        for _ in 0..5 {
            sim.schedule(Duration::from_secs(1), |_| {});
        }
        assert_eq!(sim.profile().queue_depth_high_water, 5);
        sim.run();
        let t0 = SimTime::ZERO;
        sim.recorder()
            .add_span("node.cpu.busy", t0, SimTime::from_secs(1), 0.5);
        let profile = sim.profile();
        assert_eq!(profile.events_executed, 5);
        assert_eq!(profile.pending_events, 0);
        assert_eq!(profile.server_busy.len(), 1);
        assert_eq!(profile.server_busy[0].key, "node.cpu.busy");
        assert!((profile.server_busy[0].busy_secs - 0.5).abs() < 1e-9);
        assert!((profile.server_busy[0].utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn trace_collects_when_enabled() {
        let mut sim = Sim::new(0);
        sim.enable_trace();
        sim.schedule(Duration::from_secs(2), |sim| sim.trace(|| "hello".into()));
        sim.run();
        assert_eq!(sim.trace_lines().len(), 1);
        assert_eq!(sim.trace_lines()[0].0, SimTime::from_secs(2));
        assert_eq!(sim.trace_lines()[0].1, "hello");
    }
}
