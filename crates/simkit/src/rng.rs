//! Deterministic random numbers: xoshiro256++ seeded through SplitMix64.
//!
//! The kernel carries its own generator rather than depending on the `rand`
//! crate so that simulated experiments are reproducible byte-for-byte from a
//! single `u64` seed regardless of dependency versions. Only the handful of
//! distributions the workloads actually use are provided.

/// A self-contained xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Uniform value in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 top bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection method for unbiased output.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; guard against ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (one value per call; simple and fine
    /// for workload generation).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal with the given *underlying* normal parameters.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bounded Pareto on `[lo, hi]` with shape `alpha` — heavy-tailed job
    /// runtimes and file sizes, the classic grid-workload shapes.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        x.clamp(lo, hi)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Rng::choose on empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut r = Rng::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut r = Rng::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match r.range(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(9);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| r.exp(4.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn bounded_pareto_in_bounds() {
        let mut r = Rng::new(17);
        for _ in 0..5000 {
            let x = r.bounded_pareto(1.1, 1.0, 1000.0);
            assert!((1.0..=1000.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(31);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(37);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
