//! Property-based invariants of the simulation kernel.

use proptest::prelude::*;
use simkit::server::{PsServer, ServerConfig, Share};
use simkit::{Duration, FifoServer, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// The clock never moves backwards and same-time events keep FIFO
    /// order, for any schedule.
    #[test]
    fn event_order_is_time_then_fifo(delays in proptest::collection::vec(0u64..1000, 1..60)) {
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (idx, &d) in delays.iter().enumerate() {
            let log = log.clone();
            sim.schedule(Duration::from_millis(d), move |sim| {
                log.borrow_mut().push((sim.now().ticks(), idx));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO broken for simultaneous events");
            }
        }
    }

    /// Processor sharing conserves work: the throughput metric equals the
    /// total injected work once all flows complete, for any flow set.
    #[test]
    fn ps_server_conserves_work(
        works in proptest::collection::vec(1.0f64..50_000.0, 1..20),
        capacity in 10.0f64..10_000.0,
    ) {
        let mut sim = Sim::new(1);
        let server = PsServer::new(ServerConfig::named("s", capacity));
        let done = Rc::new(RefCell::new(0usize));
        for &w in &works {
            let d = done.clone();
            PsServer::submit(&server, &mut sim, w, move |_| {
                *d.borrow_mut() += 1;
            });
        }
        sim.run();
        prop_assert_eq!(*done.borrow(), works.len());
        let total: f64 = works.iter().sum();
        let served = sim.recorder_ref().total("s.bytes");
        prop_assert!((served - total).abs() < 1e-3 * total.max(1.0),
            "served {} vs injected {}", served, total);
    }

    /// PS completion time of the *last* flow is exactly total/capacity for
    /// simultaneously submitted flows (work conservation in time).
    #[test]
    fn ps_makespan_is_total_over_capacity(
        works in proptest::collection::vec(1.0f64..10_000.0, 1..15),
    ) {
        let capacity = 100.0;
        let mut sim = Sim::new(2);
        let server = PsServer::new(ServerConfig::silent(capacity));
        for &w in &works {
            PsServer::submit(&server, &mut sim, w, |_| {});
        }
        sim.run();
        let expect = works.iter().sum::<f64>() / capacity;
        let got = sim.now().as_secs_f64();
        prop_assert!((got - expect).abs() < 1e-3 + 1e-6 * expect,
            "makespan {} vs {}", got, expect);
    }

    /// Rate caps never make a flow finish *earlier* than its cap allows,
    /// and never later than sequential service of everything.
    #[test]
    fn ps_cap_bounds_completion(
        work in 100.0f64..10_000.0,
        cap_frac in 0.05f64..1.0,
    ) {
        let capacity = 1000.0;
        let cap = capacity * cap_frac;
        let mut sim = Sim::new(3);
        let server = PsServer::new(ServerConfig::silent(capacity));
        let t = Rc::new(RefCell::new(0.0));
        let t2 = t.clone();
        PsServer::submit_with(&server, &mut sim, work, Share::capped(cap), move |sim| {
            *t2.borrow_mut() = sim.now().as_secs_f64();
        });
        sim.run();
        let lower = work / cap;
        prop_assert!(*t.borrow() >= lower - 1e-3, "{} < {}", t.borrow(), lower);
        prop_assert!(*t.borrow() <= lower + 1e-2, "{} > {}", t.borrow(), lower);
    }

    /// FIFO serves in submission order regardless of job sizes.
    #[test]
    fn fifo_completion_order_is_submission_order(
        works in proptest::collection::vec(1.0f64..5_000.0, 1..20),
    ) {
        let mut sim = Sim::new(4);
        let disk = FifoServer::new(ServerConfig::silent(500.0));
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &w) in works.iter().enumerate() {
            let o = order.clone();
            FifoServer::submit(&disk, &mut sim, w, move |_| {
                o.borrow_mut().push(i);
            });
        }
        sim.run();
        let expected: Vec<usize> = (0..works.len()).collect();
        prop_assert_eq!(order.borrow().clone(), expected);
    }

    /// add_span conserves the amount for arbitrary spans and intervals.
    #[test]
    fn recorder_span_conservation(
        t0 in 0u64..1_000_000,
        len in 1u64..1_000_000,
        amount in 0.001f64..1e9,
        interval_ms in 1u64..10_000,
    ) {
        let mut rec = simkit::Recorder::new(Duration::from_millis(interval_ms));
        let a = SimTime::from_ticks(t0);
        let b = SimTime::from_ticks(t0 + len);
        rec.add_span("x", a, b, amount);
        let total = rec.total("x");
        prop_assert!((total - amount).abs() < 1e-9 * amount.max(1.0) + 1e-9,
            "{} vs {}", total, amount);
    }

    /// Summaries are order-invariant and bounded by min/max.
    #[test]
    fn summary_properties(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s1 = simkit::stats::summarize(&xs);
        xs.reverse();
        let s2 = simkit::stats::summarize(&xs);
        prop_assert_eq!(s1, s2);
        prop_assert!(s1.min <= s1.p50 && s1.p50 <= s1.p95 && s1.p95 <= s1.max);
        prop_assert!(s1.mean >= s1.min - 1e-9 && s1.mean <= s1.max + 1e-9);
    }

    /// The RNG's `below` is always in range and `range` hits both ends
    /// eventually (smoke-level distribution sanity).
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = simkit::Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
            let x = rng.range_f64(-2.0, 3.0);
            prop_assert!((-2.0..3.0).contains(&x));
        }
    }

    /// Interned-ID recording is byte-equivalent to string-key recording:
    /// the same operation sequence applied through both APIs yields
    /// identical keys, totals, and bucket vectors.
    #[test]
    fn interned_recording_equals_string_recording(
        ops in proptest::collection::vec(
            (0usize..4, 0u64..500_000, 1u64..300_000, 0.001f64..1e6, any::<bool>()),
            1..80,
        ),
        interval_ms in 1u64..5_000,
    ) {
        const NAMES: [&str; 4] = ["host.cpu.busy", "net.out.bytes", "disk.write.bytes", "wan.up.bytes"];
        let interval = Duration::from_millis(interval_ms);
        let mut by_string = simkit::Recorder::new(interval);
        let mut by_id = simkit::Recorder::new(interval);
        // intern in a scrambled order so MetricId values differ from the
        // order the string path first sees the keys
        let ids: Vec<simkit::MetricId> = NAMES
            .iter()
            .rev()
            .map(|k| by_id.intern(k))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        for &(which, t0, len, amount, is_span) in &ops {
            let a = SimTime::from_ticks(t0);
            let b = SimTime::from_ticks(t0 + len);
            if is_span {
                by_string.add_span(NAMES[which], a, b, amount);
                by_id.add_span_id(ids[which], a, b, amount);
            } else {
                by_string.add_point(NAMES[which], a, amount);
                by_id.add_point_id(ids[which], a, amount);
            }
        }
        let touched: Vec<&str> = by_string.keys().collect();
        for key in touched {
            let s = by_string.series(key).expect("string series");
            let i = by_id.series(key).expect("id series");
            prop_assert_eq!(
                s.buckets(), i.buckets(),
                "bucket mismatch for {}", key
            );
        }
    }

    /// The equal-share fast path (all-default shares) is numerically
    /// identical to the general water-filling path: forcing the general
    /// path with a never-binding finite rate cap must reproduce the same
    /// completion times to within 1e-9.
    #[test]
    fn equal_share_fast_path_matches_general_water_fill(
        works in proptest::collection::vec(1.0f64..20_000.0, 1..24),
        late in proptest::collection::vec((1u64..120_000, 1.0f64..20_000.0), 0..8),
        capacity in 10.0f64..5_000.0,
    ) {
        // completion times via a given share assigned to every flow
        let run = |share: Share| -> Vec<f64> {
            let mut sim = Sim::new(9);
            let server = PsServer::new(ServerConfig::silent(capacity));
            let times: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, &w) in works.iter().enumerate() {
                let t = times.clone();
                PsServer::submit_with(&server, &mut sim, w, share, move |sim| {
                    t.borrow_mut().push((i, sim.now().as_secs_f64()));
                });
            }
            // staggered arrivals exercise rate recomputes mid-service
            for (j, &(at_ms, w)) in late.iter().enumerate() {
                let t = times.clone();
                let server = server.clone();
                let idx = works.len() + j;
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    let t = t.clone();
                    PsServer::submit_with(&server, sim, w, share, move |sim| {
                        t.borrow_mut().push((idx, sim.now().as_secs_f64()));
                    });
                });
            }
            sim.run();
            let mut v = times.borrow().clone();
            v.sort_by_key(|&(i, _)| i);
            v.into_iter().map(|(_, t)| t).collect()
        };
        // rate ≤ capacity always, so a cap at exactly `capacity` never
        // binds — but being finite it defeats the all-default fast path
        let fast = run(Share::default());
        let general = run(Share::capped(capacity));
        prop_assert_eq!(fast.len(), general.len());
        for (i, (a, b)) in fast.iter().zip(&general).enumerate() {
            prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0),
                "flow {} diverged: fast {} vs general {}", i, a, b);
        }
    }

    /// Weighted + capped flows served by the scratch-buffer water-fill
    /// match an independent reference computation of completion order:
    /// total served work is conserved regardless of the share mix.
    #[test]
    fn mixed_share_water_fill_conserves_work(
        flows in proptest::collection::vec(
            (1.0f64..10_000.0, 0.25f64..8.0, 0.05f64..2.0),
            1..16,
        ),
    ) {
        let capacity = 500.0;
        let mut sim = Sim::new(11);
        let server = PsServer::new(ServerConfig::named("m", capacity));
        let done = Rc::new(RefCell::new(0usize));
        for &(work, weight, cap_frac) in &flows {
            let share = Share { weight, rate_cap: capacity * cap_frac };
            let d = done.clone();
            PsServer::submit_with(&server, &mut sim, work, share, move |_| {
                *d.borrow_mut() += 1;
            });
        }
        sim.run();
        prop_assert_eq!(*done.borrow(), flows.len());
        let total: f64 = flows.iter().map(|f| f.0).sum();
        let served = sim.recorder_ref().total("m.bytes");
        prop_assert!((served - total).abs() < 1e-3 * total.max(1.0),
            "served {} vs injected {}", served, total);
    }
}
