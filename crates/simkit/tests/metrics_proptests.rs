//! Property-based invariants of the windowed metrics registry.
//!
//! The health plane leans on two structural facts: a range query is a
//! pure merge of per-window aggregates (so any subrange, merged in any
//! order, gives one answer), and feeding identical observations always
//! yields byte-identical exports. Both are pinned here against naive
//! reference models.

use proptest::prelude::*;
use simkit::metrics::{WindowAgg, WindowedRegistry};
use simkit::{Duration, SimTime};

fn agg_of(values: &[u64]) -> WindowAgg {
    let mut a = WindowAgg::histogram();
    for &v in values {
        a.record(v);
    }
    a
}

proptest! {
    /// Merging window aggregates is commutative and associative: any
    /// grouping and order of the same observations produces the same
    /// aggregate as recording them all into one window.
    #[test]
    fn window_merge_is_order_insensitive(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (aa, ab, ac) = (agg_of(&a), agg_of(&b), agg_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = aa.clone();
        left.merge(&ab);
        left.merge(&ac);
        // c ⊕ (b ⊕ a)
        let mut right = ac.clone();
        let mut ba = ab.clone();
        ba.merge(&aa);
        right.merge(&ba);
        prop_assert_eq!(&left, &right, "merge grouping changed the aggregate");
        // both equal one flat recording of the concatenation
        let mut flat: Vec<u64> = a.clone();
        flat.extend(&b);
        flat.extend(&c);
        prop_assert_eq!(&left, &agg_of(&flat), "merge disagrees with direct recording");
        // quantiles stay inside the observed envelope and monotone in q
        let mut prev = 0.0f64;
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = left.quantile(q);
            prop_assert!(est >= prev - 1e-9, "quantile not monotone in q");
            prop_assert!(est <= left.max() as f64, "quantile above observed max");
            prev = est;
        }
    }

    /// A windowed range query equals the naive reference model: filter
    /// the raw observations to the windows overlapping the lookback and
    /// aggregate them directly.
    #[test]
    fn windowed_range_matches_naive_reference(
        mut obs in proptest::collection::vec((0u64..60, 0u64..100_000), 1..120),
        now_s in 0u64..70,
        lookback_s in 1u64..70,
    ) {
        // the live feed is monotone in sim time; the ring (64 slots of
        // 1 s here) is sized so nothing is evicted inside the test span
        obs.sort();
        let mut reg = WindowedRegistry::new(Duration::from_secs(1), 64);
        let id = reg.histogram("lat");
        for &(t, v) in &obs {
            reg.record(id, SimTime::from_secs(t), v);
        }
        let now = SimTime::from_secs(now_s);
        let got = reg.range(id, now, Duration::from_secs(lookback_s));
        // naive model over whole windows (epoch granularity, like range())
        let start_epoch = now_s.saturating_sub(lookback_s);
        let picked: Vec<u64> = obs
            .iter()
            .filter(|(t, _)| *t >= start_epoch && *t <= now_s)
            .map(|&(_, v)| v)
            .collect();
        prop_assert_eq!(got.count(), picked.len() as u64, "range count drifted");
        prop_assert_eq!(got.sum(), picked.iter().sum::<u64>(), "range sum drifted");
        prop_assert_eq!(got.max(), picked.iter().copied().max().unwrap_or(0), "range max drifted");
        let series = reg.series("lat").expect("series exists");
        prop_assert_eq!(series.lifetime_count(), obs.len() as u64);
    }

    /// Identical observations produce byte-identical exports — the text
    /// exposition and the time-series CSV are deterministic functions of
    /// the recorded data, independent of registry construction order.
    #[test]
    fn exports_are_deterministic(
        obs in proptest::collection::vec((0u64..120, 1u64..1_000_000), 1..100),
        reversed in any::<bool>(),
    ) {
        let build = |flip: bool| {
            let mut reg = WindowedRegistry::new(Duration::from_secs(5), 32);
            // declaration order of unrelated series must not leak into
            // the exports
            let (h, c) = if flip {
                (reg.histogram("lat_us"), reg.counter("errs"))
            } else {
                let c = reg.counter("errs");
                (reg.histogram("lat_us"), c)
            };
            let mut sorted = obs.clone();
            sorted.sort();
            for &(t, v) in &sorted {
                let at = SimTime::from_secs(t);
                reg.record(h, at, v);
                if v % 7 == 0 {
                    reg.record(c, at, 1);
                }
            }
            let now = SimTime::from_secs(130);
            (reg.prometheus_text(now), reg.timeseries_csv())
        };
        let (prom_a, csv_a) = build(false);
        let (prom_b, csv_b) = build(reversed);
        prop_assert_eq!(prom_a.clone(), prom_b, "exposition text is not deterministic");
        prop_assert_eq!(csv_a.clone(), csv_b, "time-series CSV is not deterministic");
        let (families, samples) = simkit::validate_prometheus_text(&prom_a)
            .expect("generated exposition must satisfy the strict parser");
        prop_assert!(families >= 2 && samples >= families);
    }
}
