//! Criterion benches for the simkit kernel hot paths — the same scenarios
//! `--bin perfbaseline` tracks in `BENCH_kernel.json`, exposed through the
//! criterion harness for interactive comparison runs.
//!
//! Run with: `cargo bench -p onserve-bench --bench kernel`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{Runner, KB};
use simkit::wheel::TimerWheel;
use simkit::{Duration, PsServer, Recorder, ServerConfig, Sim, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    const EVENTS: u64 = 1024;
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("queue_push_pop_1024", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            for i in 0..EVENTS {
                sim.schedule(Duration::from_micros(i), |_| {});
            }
            sim.run();
            black_box(sim.now())
        })
    });
    g.finish();
}

fn bench_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const EVENTS: u64 = 1024;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("wheel_push_pop_1024", |b| {
        b.iter(|| {
            let mut w: TimerWheel<u32> = TimerWheel::new();
            for i in 0..EVENTS {
                w.push(i, i, 0);
            }
            while w.pop_next(u64::MAX, |_| true).is_some() {}
            black_box(w.cursor())
        })
    });
    const CASCADES: u64 = 512;
    g.throughput(Throughput::Elements(CASCADES));
    g.bench_function("wheel_cascade_512", |b| {
        b.iter(|| {
            let mut w: TimerWheel<u32> = TimerWheel::new();
            for i in 0..CASCADES {
                w.push(i * 65_536, i, 0);
            }
            while w.pop_next(u64::MAX, |_| true).is_some() {}
            black_box(w.cursor())
        })
    });
    const TICKS: u64 = 16;
    const PER_TICK: u64 = 64;
    g.throughput(Throughput::Elements(TICKS * PER_TICK));
    g.bench_function("same_tick_batch_64x16", |b| {
        b.iter(|| {
            let mut sim = Sim::new(4);
            for t in 0..TICKS {
                for _ in 0..PER_TICK {
                    sim.schedule(Duration::from_micros(t), |_| {});
                }
            }
            sim.run();
            black_box(sim.now())
        })
    });
    g.finish();
}

fn bench_ps_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    for n in [2u64, 16, 64] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("ps_flows_{n}"), |b| {
            b.iter(|| {
                let mut sim = Sim::new(2);
                let srv = PsServer::new(ServerConfig::named("srv", 100.0));
                for i in 0..n {
                    PsServer::submit(&srv, &mut sim, 1.0 + i as f64, |_| {});
                }
                sim.run();
                black_box(sim.now())
            })
        });
    }
    g.finish();
}

fn bench_recorder(c: &mut Criterion) {
    const SPANS: u64 = 256;
    let mut g = c.benchmark_group("metrics");
    g.throughput(Throughput::Elements(SPANS));
    g.bench_function("add_span_256", |b| {
        b.iter(|| {
            let mut rec = Recorder::new(Duration::from_secs(3));
            for i in 0..SPANS {
                let t0 = SimTime::from_secs_f64(i as f64 * 0.7);
                let t1 = SimTime::from_secs_f64(i as f64 * 0.7 + 0.9);
                rec.add_span("host.cpu.busy", t0, t1, 0.9);
            }
            black_box(rec.total("host.cpu.busy"))
        })
    });
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    const PAIRS: u64 = 4096;
    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(PAIRS));
    g.bench_function("span_disabled", |b| {
        b.iter(|| {
            let mut sim = Sim::new(3);
            for _ in 0..PAIRS {
                let id = sim.span_begin("bench.span");
                sim.span_end(id);
            }
            black_box(&mut sim);
        })
    });
    g.bench_function("span_enabled", |b| {
        b.iter(|| {
            let mut sim = Sim::new(3);
            sim.enable_telemetry();
            for _ in 0..PAIRS {
                let id = sim.span_begin("bench.span");
                sim.span_end(id);
            }
            black_box(&mut sim);
        })
    });
    g.finish();
}

fn bench_fig6_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.bench_function("fig6_invocation", |b| {
        b.iter(|| {
            let mut r = Runner::new(6, &DeploymentSpec::default());
            r.publish(
                "small.exe",
                64,
                ExecutionProfile::quick()
                    .lasting(Duration::from_secs(60))
                    .producing(48.0 * KB),
                &[],
            );
            let (res, _) = r.invoke_blocking("small", &[]);
            res.expect("invocation");
            black_box(r.sim.now())
        })
    });
    g.finish();
}

criterion_group!(
    kernel,
    bench_event_queue,
    bench_wheel,
    bench_ps_flows,
    bench_recorder,
    bench_telemetry,
    bench_fig6_pipeline
);
criterion_main!(kernel);
