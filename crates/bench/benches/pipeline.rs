//! Criterion benches over the full middleware pipeline: how much host CPU
//! one simulated scenario costs. These guard the harness itself — the
//! figure binaries stay instant-fast only while a full upload+invoke
//! simulation stays in the low milliseconds.

use criterion::{criterion_group, criterion_main, Criterion};

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{Runner, KB};
use simkit::Duration;

fn bench_publish(c: &mut Criterion) {
    c.bench_function("pipeline/upload_publish_256k", |b| {
        b.iter(|| {
            let mut r = Runner::new(1, &DeploymentSpec::default());
            r.publish("bench.exe", 256 * 1024, ExecutionProfile::quick(), &[])
        })
    });
}

fn bench_full_invocation(c: &mut Criterion) {
    c.bench_function("pipeline/invoke_small_job", |b| {
        b.iter(|| {
            let mut r = Runner::new(2, &DeploymentSpec::default());
            r.publish(
                "bench.exe",
                64 * 1024,
                ExecutionProfile::quick()
                    .lasting(Duration::from_secs(30))
                    .producing(16.0 * KB),
                &[],
            );
            let (res, at) = r.invoke_blocking("bench", &[]);
            res.expect("invoke");
            at
        })
    });
}

fn bench_sweep_batch(c: &mut Criterion) {
    c.bench_function("pipeline/24_concurrent_invocations", |b| {
        b.iter(|| {
            let mut r = Runner::new(3, &DeploymentSpec::default());
            r.publish(
                "bench.exe",
                64 * 1024,
                ExecutionProfile::quick()
                    .lasting(Duration::from_secs(120))
                    .producing(16.0 * KB),
                &[],
            );
            use std::cell::Cell;
            use std::rc::Rc;
            let done = Rc::new(Cell::new(0u32));
            for _ in 0..24 {
                let d2 = done.clone();
                r.d.invoke(&mut r.sim, "bench", &[], move |_, res| {
                    res.expect("invoke");
                    d2.set(d2.get() + 1);
                });
            }
            r.sim.run();
            assert_eq!(done.get(), 24);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_publish, bench_full_invocation, bench_sweep_batch
}
criterion_main!(benches);
