//! Criterion micro-benchmarks for the substrate crates: the engineering
//! baselines behind the figure harness (XML, SOAP sizes, the blob codec,
//! RSL, UDDI, the batch scheduler, proxy validation, raw event churn).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use blobstore::{compress, decompress};
use gridsim::scheduler::{ClusterScheduler, SchedPolicy, SchedRequest};
use gridsim::{CertAuthority, JobDescription};
use simkit::{Duration, Rng, Sim, SimTime};
use wsstack::uddi::BindingTemplate;
use wsstack::{SoapValue, UddiRegistry, XmlNode};

fn bench_xml(c: &mut Criterion) {
    let doc = {
        let mut root = XmlNode::new("soap:Envelope").attr("xmlns:soap", "http://x");
        let mut body = XmlNode::new("soap:Body");
        for i in 0..50 {
            body.children.push(
                XmlNode::text_node(&format!("arg{i}"), &format!("value-{i} & more"))
                    .attr("xsi:type", "xsd:string"),
            );
        }
        root.children.push(body);
        root
    };
    let text = doc.to_xml();
    let mut g = c.benchmark_group("xml");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("serialize_50_args", |b| b.iter(|| black_box(&doc).to_xml()));
    g.bench_function("parse_50_args", |b| {
        b.iter(|| XmlNode::parse(black_box(&text)).unwrap())
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut rng = Rng::new(42);
    let mut data = Vec::with_capacity(1 << 20);
    while data.len() < 1 << 20 {
        // mixed structured payload
        data.extend_from_slice(format!("record:{:08x};", rng.next_u64()).as_bytes());
        if rng.chance(0.3) {
            data.extend_from_slice(&[0u8; 64]);
        }
    }
    let compressed = compress(&data);
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_1mib", |b| b.iter(|| compress(black_box(&data))));
    g.bench_function("decompress_1mib", |b| {
        b.iter(|| decompress(black_box(&compressed)).unwrap())
    });
    g.finish();
}

fn bench_rsl(c: &mut Criterion) {
    let jd = JobDescription::new("/apps/solver")
        .args(["--alpha", "0.5", "--mesh", "big mesh file"])
        .cores(16)
        .walltime(Duration::from_secs(7200))
        .on_queue("normal")
        .capture_stdout("out.txt");
    let text = jd.to_rsl();
    let mut g = c.benchmark_group("rsl");
    g.bench_function("serialize", |b| b.iter(|| black_box(&jd).to_rsl()));
    g.bench_function("parse", |b| {
        b.iter(|| JobDescription::parse(black_box(&text)).unwrap())
    });
    g.finish();
}

fn bench_uddi(c: &mut Criterion) {
    let mut g = c.benchmark_group("uddi");
    g.bench_function("publish_1000", |b| {
        b.iter(|| {
            let mut reg = UddiRegistry::new();
            for i in 0..1000 {
                reg.publish(
                    "onserve",
                    &format!("service-{i}"),
                    "d",
                    BindingTemplate {
                        access_point: format!("http://a/{i}"),
                        wsdl_location: format!("http://a/{i}?wsdl"),
                    },
                )
                .unwrap();
            }
            reg.len()
        })
    });
    let mut reg = UddiRegistry::new();
    for i in 0..1000 {
        reg.publish(
            "onserve",
            &format!("service-{i}"),
            "d",
            BindingTemplate {
                access_point: format!("http://a/{i}"),
                wsdl_location: String::new(),
            },
        )
        .unwrap();
    }
    g.bench_function("wildcard_find_in_1000", |b| {
        b.iter(|| reg.find(black_box("%service-5%")).len())
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    for policy in [SchedPolicy::Fcfs, SchedPolicy::Backfill] {
        g.bench_function(format!("churn_1000_jobs_{policy:?}"), |b| {
            b.iter(|| {
                let mut sim = Sim::new(1);
                let sched = ClusterScheduler::new("b", 16, 8, policy);
                for i in 0..1000u64 {
                    let cores = 1 + (i % 16) as u32;
                    let sc = sched.clone();
                    sim.schedule(Duration::from_secs(i / 4), move |sim| {
                        ClusterScheduler::submit(
                            &sc,
                            sim,
                            SchedRequest {
                                cores,
                                walltime_limit: Duration::from_secs(500),
                                actual_runtime: Duration::from_secs(60 + cores as u64),
                            },
                            |_, _| {},
                        );
                    });
                }
                sim.run()
            })
        });
    }
    g.finish();
}

fn bench_security(c: &mut Criterion) {
    let mut ca = CertAuthority::new("/CN=CA", 7);
    let cred = ca.issue("/CN=user", SimTime::ZERO, Duration::from_secs(86400));
    let deep = cred
        .delegate(SimTime::ZERO, Duration::from_secs(3600))
        .delegate(SimTime::ZERO, Duration::from_secs(3600))
        .delegate(SimTime::ZERO, Duration::from_secs(3600));
    let proxy = deep.proxy();
    c.bench_function("security/validate_depth3_chain", |b| {
        b.iter(|| {
            black_box(&proxy)
                .validate(&ca, SimTime::from_secs(60), 8)
                .unwrap()
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule_run_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(3);
            for i in 0..100_000u64 {
                sim.schedule(Duration::from_micros(i % 977), |_| {});
            }
            sim.run()
        })
    });
}

fn bench_soap(c: &mut Criterion) {
    let env = wsstack::soap::Envelope::request("Solver", "execute")
        .arg("a", SoapValue::Int(1))
        .arg("b", SoapValue::Str("text".into()))
        .arg(
            "data",
            SoapValue::Binary {
                bytes: 1024.0,
                digest: 7,
            },
        );
    c.bench_function("soap/envelope_roundtrip", |b| {
        b.iter(|| {
            let doc = black_box(&env).to_xml();
            wsstack::soap::Envelope::parse(&doc).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_xml,
    bench_codec,
    bench_rsl,
    bench_uddi,
    bench_scheduler,
    bench_security,
    bench_engine,
    bench_soap
);
criterion_main!(benches);
