//! End-to-end trace checks on the Figure-6 pipeline.
//!
//! With telemetry enabled, one invocation of the small service must
//! produce a causal span tree whose invocation root contains the grid
//! stages in order — authenticate → stage → submit — plus at least three
//! tentative-output polls spaced by the configured 9 s poll interval, and
//! the Chrome trace-event export must be strictly well-formed (parseable
//! JSON, monotone timestamps, balanced `B`/`E` pairs, resolvable parent
//! references — all enforced by `validate_chrome_trace`).

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{Runner, KB};
use simkit::telemetry::validate_chrome_trace;
use simkit::Duration;

/// The fig6 scenario with telemetry on, drained to completion.
fn traced_fig6() -> Runner {
    let mut r = Runner::new(6, &DeploymentSpec::default());
    r.sim.enable_telemetry();
    r.publish(
        "small.exe",
        64,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(60))
            .producing(48.0 * KB),
        &[],
    );
    let (res, _) = r.invoke_blocking("small", &[]);
    res.expect("invocation");
    r
}

#[test]
fn invocation_tree_has_grid_stages_and_periodic_polls() {
    let r = traced_fig6();
    let t = r.sim.telemetry().expect("telemetry on");

    let root = *t
        .spans_named("onserve.invoke")
        .first()
        .expect("onserve.invoke span recorded");
    let stage_start = |name: &str| -> f64 {
        let id = t
            .spans_named(name)
            .into_iter()
            .find(|&id| t.is_descendant(id, root))
            .unwrap_or_else(|| panic!("{name} missing from the invocation tree"));
        t.span(id).expect("resolvable id").start.as_secs_f64()
    };

    let auth = stage_start("agent.authenticate");
    let stage = stage_start("agent.stage");
    let submit = stage_start("agent.submit");
    assert!(
        auth <= stage && stage <= submit,
        "grid stages out of order: authenticate {auth} s, stage {stage} s, submit {submit} s"
    );

    // the gatekeeper's job span nests under the submission
    assert!(
        t.spans_named("gram.job")
            .into_iter()
            .any(|id| t.is_descendant(id, root)),
        "gram.job missing from the invocation tree"
    );

    // at least three tentative-output polls, spaced by the 9 s interval
    // (plus the request round-trip)
    let polls: Vec<f64> = t
        .spans_named("agent.poll")
        .into_iter()
        .filter(|&id| t.is_descendant(id, root))
        .map(|id| t.span(id).expect("resolvable id").start.as_secs_f64())
        .collect();
    assert!(
        polls.len() >= 3,
        "expected >= 3 periodic polls, got {}",
        polls.len()
    );
    assert!(polls[0] >= submit, "polling started before submission");
    for gap in polls.windows(2).map(|w| w[1] - w[0]) {
        assert!(
            (9.0..=13.0).contains(&gap),
            "poll gap {gap:.2} s outside the 9 s poll-interval band"
        );
    }

    // the invocation root closed cleanly
    let root_rec = t.span(root).expect("root record");
    assert!(root_rec.end.is_some(), "onserve.invoke never closed");
    assert!(!root_rec.failed, "onserve.invoke marked failed");
}

#[test]
fn chrome_trace_export_is_strictly_well_formed() {
    let r = traced_fig6();
    let text = r.sim.export_chrome_trace();
    let check = validate_chrome_trace(&text).expect("well-formed Chrome trace");
    assert!(check.events > 0, "empty trace");
    assert_eq!(check.begins, check.ends, "unbalanced B/E events");
    assert!(check.max_ts_us > 0);
    // timestamps are the virtual clock in microseconds, so nothing can be
    // later than the drained simulation's end instant
    assert!(check.max_ts_us <= r.sim.now().ticks());
}

#[test]
fn disabled_run_exports_empty_trace() {
    let sim = simkit::Sim::new(0);
    let check = validate_chrome_trace(&sim.export_chrome_trace()).expect("empty skeleton parses");
    assert_eq!(check.events, 0);
}
