//! Golden determinism: the figure pipelines must produce byte-identical
//! CSV output across runs and across kernel optimisations.
//!
//! The fixtures under `tests/golden/` were captured before the fast-path
//! work (interned metric IDs, zero-alloc fair-share); every optimisation
//! PR must keep them byte-for-byte stable. Regenerate deliberately by
//! running the fig binaries and copying `target/experiments/*.csv` here —
//! and say so in the PR.

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{curve_from, trim_curves, Curve, Runner, KB};
use simkit::{Duration, SimTime, MB};

/// Same CSV shape `onserve_bench::save_curves` writes.
fn csv_of(curves: &[Curve]) -> String {
    let headers: Vec<String> = curves
        .iter()
        .map(|c| format!("{} ({})", c.label, c.unit))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<&[(f64, f64)]> = curves.iter().map(|c| c.rows.as_slice()).collect();
    simkit::report::curves_to_csv(&header_refs, &rows)
}

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The fig6 pipeline's CSV plus the number of telemetry spans recorded.
fn fig6_csv(telemetry: bool) -> (String, usize) {
    let mut r = Runner::new(6, &DeploymentSpec::default());
    if telemetry {
        r.sim.enable_telemetry();
    }
    r.publish(
        "small.exe",
        64,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(60))
            .producing(48.0 * KB),
        &[],
    );
    let t0 = r.sim.now();
    let (res, _) = r.invoke_blocking("small", &[]);
    res.expect("invocation");
    let iv = r.sim.recorder_ref().interval().as_secs_f64();
    let rec = r.sim.recorder_ref();
    let mut curves = vec![
        curve_from(
            rec.series("appliance.cpu.busy"),
            t0,
            "CPU utilization",
            "%",
            100.0 / iv,
        ),
        curve_from(
            rec.series("appliance.net.out.bytes"),
            t0,
            "network out",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.net.in.bytes"),
            t0,
            "network in",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.write.bytes"),
            t0,
            "hard disk write",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.read.bytes"),
            t0,
            "hard disk read",
            "KB/s",
            1.0 / (iv * KB),
        ),
    ];
    trim_curves(&mut curves);
    let spans = r.sim.telemetry().map_or(0, |t| t.spans().len());
    (csv_of(&curves), spans)
}

#[test]
fn fig6_curves_match_golden() {
    let (csv, _) = fig6_csv(false);
    assert_eq!(csv, golden("fig6.csv"), "fig6 CSV drifted");
}

/// Result-neutrality: running the exact same pipeline with the full span/
/// counter machinery turned on must not move a single byte of the golden
/// CSV — telemetry observes the schedule, it never participates in it.
#[test]
fn fig6_curves_unchanged_with_telemetry_enabled() {
    let (csv, spans) = fig6_csv(true);
    assert_eq!(csv, golden("fig6.csv"), "telemetry perturbed the fig6 CSV");
    assert!(spans > 10, "expected a populated span tree, got {spans} spans");
}

#[test]
fn fig7_curves_match_golden() {
    let mut r = Runner::new(7, &DeploymentSpec::default());
    r.publish(
        "large.exe",
        5 * 1024 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(45))
            .producing(32.0 * KB),
        &[],
    );
    let t0 = r.sim.now();
    let (res, _) = r.invoke_blocking("large", &[]);
    res.expect("invocation");
    let iv = r.sim.recorder_ref().interval().as_secs_f64();
    let rec = r.sim.recorder_ref();
    let mut curves = vec![
        curve_from(
            rec.series("appliance.net.out.bytes"),
            t0,
            "network out",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.net.in.bytes"),
            t0,
            "network in",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.write.bytes"),
            t0,
            "hard disk write",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.read.bytes"),
            t0,
            "hard disk read",
            "KB/s",
            1.0 / (iv * KB),
        ),
    ];
    trim_curves(&mut curves);
    assert_eq!(csv_of(&curves), golden("fig7.csv"), "fig7 CSV drifted");
}

fn fig8_curves(interval: Duration) -> Vec<Curve> {
    let mut r = Runner::with_sampling(8, &DeploymentSpec::default(), interval);
    let t0 = SimTime::ZERO;
    r.publish("upload5mb.exe", 5 * 1024 * 1024, ExecutionProfile::quick(), &[]);
    let iv = interval.as_secs_f64();
    let rec = r.sim.recorder_ref();
    let mut curves = vec![
        curve_from(
            rec.series("appliance.cpu.busy"),
            t0,
            "CPU utilization",
            "%",
            100.0 / iv,
        ),
        curve_from(
            rec.series("appliance.net.in.bytes"),
            t0,
            "network in",
            "MB/s",
            1.0 / (iv * MB),
        ),
        curve_from(
            rec.series("appliance.disk.write.bytes"),
            t0,
            "hard disk write",
            "MB/s",
            1.0 / (iv * MB),
        ),
        curve_from(
            rec.series("appliance.disk.read.bytes"),
            t0,
            "hard disk read",
            "MB/s",
            1.0 / (iv * MB),
        ),
    ];
    trim_curves(&mut curves);
    curves
}

/// The fleet-scaling sweep must be byte-stable per seed, and its headline
/// result — replicas only scale when storage replicates with them — must
/// hold, not just its bytes.
#[test]
fn fleetscale_sweep_matches_golden() {
    use onserve_bench::fleetscale;
    let points = fleetscale::sweep();
    assert_eq!(
        fleetscale::csv(&points),
        golden("fleetscale.csv"),
        "fleetscale CSV drifted"
    );
    let tp = |topology: &str, replicas: usize| {
        points
            .iter()
            .find(|p| p.topology.label() == topology && p.replicas == replicas)
            .expect("sweep point present")
            .throughput_rps
    };
    assert!(
        tp("replicated", 4) >= 2.0 * tp("replicated", 1),
        "replicated storage must scale ≥2x from 1 to 4 replicas"
    );
    assert!(
        tp("shared", 4) <= 1.3 * tp("shared", 1),
        "shared storage must stay ~flat as replicas are added"
    );
}

/// The chaos experiment must be byte-stable per seed, and its headline
/// result — front-door retry recovers at least twice the goodput lost to
/// replica crashes — must hold, not just its bytes.
#[test]
fn chaos_sweep_matches_golden() {
    use onserve_bench::chaos;
    let points = chaos::sweep();
    assert_eq!(chaos::csv(&points), golden("chaos.csv"), "chaos CSV drifted");
    let row = |retry: bool| points.iter().find(|p| p.retry == retry).expect("row");
    let (on, off) = (row(true), row(false));
    assert_eq!(on.issued, off.issued, "same seed must offer the same load");
    assert_eq!(on.lost, 3, "all three pinned crashes must land");
    assert!(
        on.goodput_rps >= 2.0 * off.goodput_rps,
        "retry-on goodput ({}) must be ≥ 2x retry-off ({})",
        on.goodput_rps,
        off.goodput_rps
    );
    assert!(on.retried > 0, "retry-on must actually retry");
    assert_eq!(off.retried, 0, "retry-off must never retry");
}

/// The million-principal experiment's CI shrink must be byte-stable per
/// seed, and the shape it shares with the full run must hold: a churning
/// pin table (population ≫ capacity is only true at full scale, but even
/// here every distinct principal pins once), conservation at the front
/// door, and a population actually sampled broadly.
#[test]
fn millionuser_ci_matches_golden() {
    use onserve_bench::millionuser;
    let (point, _host) = millionuser::run_point(millionuser::CI);
    assert_eq!(
        millionuser::csv(std::slice::from_ref(&point)),
        golden("millionuser.csv"),
        "millionuser CI CSV drifted"
    );
    assert_eq!(
        point.issued,
        point.completed + point.faulted,
        "every issued request must settle"
    );
    assert_eq!(point.faulted, 0, "no faults in a quiet fleet");
    assert_eq!(
        point.affinity_misses, point.distinct_principals,
        "each distinct principal pins exactly once below pin-table capacity"
    );
    assert!(
        point.affinity_hits > 0,
        "repeat principals must ride their pins"
    );
    // With n draws from a population p, distinct ≈ p(1 − e^(−n/p)); at the
    // CI scale that is well over half the population.
    assert!(
        point.distinct_principals * 2 > point.population,
        "CI run must sample most of its population ({} of {})",
        point.distinct_principals,
        point.population
    );
    assert!(
        point.events > 500_000,
        "CI run must be kernel-heavy, saw {} events",
        point.events
    );
}

/// The geo experiment must be byte-stable per seed, and its headline
/// results must hold, not just their bytes: nearest-site routing beats
/// site-oblivious round-robin on mean latency, WAN link faults cost real
/// latency, and federation loses none of the accepted work that the
/// site-oblivious control times out on.
#[test]
fn geo_sweep_matches_golden() {
    use onserve_bench::geo::{self, GeoMode};
    let points = geo::sweep();
    assert_eq!(geo::csv(&points), golden("geo.csv"), "geo CSV drifted");
    let row = |m: GeoMode| points.iter().find(|p| p.mode == m).expect("row");
    let rr = row(GeoMode::RoundRobin);
    let near = row(GeoMode::Nearest);
    let deg = row(GeoMode::Degraded);
    let obl = row(GeoMode::Oblivious);
    let fed = row(GeoMode::Federated);
    for p in &points {
        assert_eq!(p.issued, rr.issued, "same seed must offer the same load");
        assert_eq!(p.shed, 0, "nothing is refused at the door");
    }
    // latency-aware routing: nearest-site keeps most answers off the WAN
    // and beats round-robin on mean latency
    assert!(
        near.wan_hops * 3 < rr.wan_hops * 2,
        "nearest-site routing must cut WAN round trips by a third ({} vs {})",
        near.wan_hops,
        rr.wan_hops
    );
    assert!(
        near.mean_ms < rr.mean_ms,
        "nearest-site routing must beat round-robin on mean latency ({} vs {})",
        near.mean_ms,
        rr.mean_ms
    );
    // wired link faults: drops and jitter on the same routing cost real
    // latency
    assert!(deg.link_drops > 0, "the fault injector must land drops");
    assert!(
        deg.mean_ms > near.mean_ms && deg.p99_ms > near.p99_ms,
        "link faults must cost latency (mean {} vs {}, p99 {} vs {})",
        deg.mean_ms,
        near.mean_ms,
        deg.p99_ms,
        near.p99_ms
    );
    // site-oblivious control: the outage blackholes pinned work until the
    // watchdog gives up — accepted requests are lost to timeouts
    assert!(obl.faulted > 0, "the control row must lose work to the outage");
    assert!(obl.blackholed > 0, "severed-site requests must blackhole");
    assert_eq!(
        obl.completed + obl.faulted,
        obl.issued,
        "control-row conservation: every request settles"
    );
    // federation: pinned work is forwarded around the outage, answers
    // produced behind the partition are pulled back on reconnect, and no
    // accepted request is lost
    assert_eq!(fed.faulted, 0, "federation must lose nothing");
    assert_eq!(fed.completed, fed.issued, "federation completes everything");
    assert!(fed.forwarded > 0, "pinned work must be forwarded cross-site");
    assert!(
        fed.results_pulled > 0,
        "answers held behind the partition must be pulled back"
    );
    assert_eq!(fed.blackholed, 0, "geo routing never feeds the severed site");
    assert!(
        fed.completed > obl.completed,
        "federation must complete strictly more than the oblivious control"
    );
    // the captured exposition carries site labels and satisfies the strict
    // parser; the nearest row's follow-the-sun traffic touches all three
    // sites, so every site label must appear
    let (families, samples) =
        simkit::validate_prometheus_text(&near.prom).expect("exposition snapshot is valid");
    assert!(
        families >= 8 && samples > families,
        "expected a populated exposition, got {families} families / {samples} samples"
    );
    assert!(
        near.prom.contains(r#"site="east""#)
            && near.prom.contains(r#"site="central""#)
            && near.prom.contains(r#"site="west""#),
        "per-replica series must carry their site label"
    );
}

#[test]
fn fig8_curves_match_golden_at_both_sampling_rates() {
    let fine = fig8_curves(Duration::from_millis(200));
    assert_eq!(
        csv_of(&fine),
        golden("fig8-200ms.csv"),
        "fig8 200 ms CSV drifted"
    );
    let coarse = fig8_curves(Duration::from_secs(3));
    assert_eq!(
        csv_of(&coarse),
        golden("fig8-3000ms.csv"),
        "fig8 3 s CSV drifted"
    );
}

/// The affinity experiment must be byte-stable per seed, and its headline
/// claim — sticky routing cuts credential exchanges and mean latency at
/// equal offered load — must hold in the committed fixture.
#[test]
fn affinity_sweep_matches_golden() {
    use onserve_bench::affinity;
    let points = affinity::sweep();
    assert_eq!(
        affinity::csv(&points),
        golden("affinity.csv"),
        "affinity CSV drifted"
    );
    let row = |on: bool| points.iter().find(|p| p.affinity == on).expect("row");
    let (on, off) = (row(true), row(false));
    assert_eq!(on.issued, off.issued, "same seed must offer the same load");
    assert!(
        on.auth_spans < off.auth_spans,
        "affinity must avoid credential exchanges ({} vs {})",
        on.auth_spans,
        off.auth_spans
    );
    assert_eq!(
        on.auth_spans, affinity::TENANTS as u64,
        "sticky fleet authenticates each tenant exactly once"
    );
    assert!(
        on.mean_latency_s < off.mean_latency_s,
        "affinity must lower mean latency ({} vs {})",
        on.mean_latency_s,
        off.mean_latency_s
    );
    assert!(on.affinity_hits > 0 && off.affinity_hits == 0);
    assert_eq!(on.faulted + off.faulted, 0, "no faults in a quiet fleet");
}

/// The gray-failure experiment must be byte-stable per seed; the detector
/// row must flag the degraded replica within bounded virtual time and land
/// a strictly better fleet p99 than the detector-off control.
#[test]
fn grayfail_sweep_matches_golden() {
    use onserve_bench::grayfail;
    let points = grayfail::sweep();
    assert_eq!(
        grayfail::csv(&points),
        golden("grayfail.csv"),
        "grayfail CSV drifted"
    );
    let row = |d: bool| points.iter().find(|p| p.detector == d).expect("row");
    let (on, off) = (row(true), row(false));
    assert_eq!(on.issued, off.issued, "same seed must offer the same load");
    assert!(on.probations >= 1, "the victim must reach probation");
    assert_eq!(on.ejections, 1, "continued degradation must eject");
    assert!(
        on.first_probation_s >= 0.0 && on.first_probation_s <= 300.0,
        "probation within ten detector ticks of the degrade, got +{} s",
        on.first_probation_s
    );
    assert!(
        on.first_eject_s > on.first_probation_s && on.first_eject_s <= 480.0,
        "bounded escalation to ejection, got +{} s",
        on.first_eject_s
    );
    assert!(on.replaced >= 1, "the autoscaler must replace the ejected replica");
    assert_eq!(off.probations + off.ejections, 0, "control row takes no action");
    assert!(
        on.fleet_p99_s < 0.5 * off.fleet_p99_s,
        "detector must recover the fleet p99 ({} s) well below the control ({} s)",
        on.fleet_p99_s,
        off.fleet_p99_s
    );
    // the captured exposition snapshot must satisfy the strict parser
    let (families, samples) =
        simkit::validate_prometheus_text(&on.prom).expect("exposition snapshot is valid");
    assert!(
        families >= 8 && samples > families,
        "expected a populated exposition, got {families} families / {samples} samples"
    );
    assert!(
        on.timeseries.starts_with("series,t_s,count,sum,max,p50,p95,p99\n"),
        "time-series CSV header drifted"
    );
}

/// The rollout experiment must be byte-stable per seed, and the
/// zero-downtime contract must hold row by row, not just its bytes:
/// the naive restart drops work, rolling and canary drop nothing, the
/// promoted canary completes the version shift, and the lemon-struck
/// canary rolls back exactly once with the fleet p99 recovered.
#[test]
fn rollout_sweep_matches_golden() {
    use onserve_bench::rollout::{self, RolloutMode, TO_VERSION};
    let points = rollout::sweep();
    assert_eq!(
        rollout::csv(&points),
        golden("rollout.csv"),
        "rollout CSV drifted"
    );
    let row = |m: RolloutMode| points.iter().find(|p| p.mode == m).expect("row");
    let restart = row(RolloutMode::Restart);
    let rolling = row(RolloutMode::Rolling);
    let promote = row(RolloutMode::CanaryPromote);
    let rollback = row(RolloutMode::CanaryRollback);
    for p in &points {
        assert_eq!(p.issued, restart.issued, "same seed must offer the same load");
        assert_eq!(
            p.completed + p.dropped,
            p.issued,
            "conservation: every request settles"
        );
    }
    // the naive baseline loses real work: in-flight requests fault at
    // the kill and arrivals during the boot window are refused
    assert!(restart.dropped > 0, "restart must drop work");
    assert!(restart.failed > 0, "restart must fault what was in flight");
    // rolling drops nothing — retirement drains, boots precede retires
    assert_eq!(rolling.dropped, 0, "rolling drops nothing");
    assert_eq!(rolling.failed, 0, "rolling faults nothing");
    assert_eq!(rolling.replaced, 3, "rolling replaces every v1 replica");
    assert_eq!(rolling.versions, format!("{TO_VERSION}:3"), "rolling lands on v2");
    // the healthy canary is promoted and the version shift completes
    assert_eq!(promote.dropped, 0, "canary promotion drops nothing");
    assert_eq!(promote.outcome, "promoted");
    assert_eq!(promote.versions, format!("{TO_VERSION}:3"), "promotion lands on v2");
    // the lemon-struck canary rolls back exactly once, the fleet stays
    // on v1, and the final-window p99 is back at the rolling baseline
    assert_eq!(rollback.rollbacks, 1, "exactly one rollback");
    assert_eq!(rollback.outcome, "rolled-back");
    assert_eq!(rollback.versions, "1:3", "rollback reverts the census to v1");
    assert_eq!(rollback.dropped, 0, "the drained canary loses nothing");
    assert!(
        rollback.fleet_p99_s > 0.0 && rollback.fleet_p99_s <= 1.5 * rolling.fleet_p99_s,
        "fleet p99 must recover after the rollback ({} s vs rolling {} s)",
        rollback.fleet_p99_s,
        rolling.fleet_p99_s
    );
    // the promoted fleet's exposition carries the new version label and
    // satisfies the strict parser
    let (families, samples) =
        simkit::validate_prometheus_text(&promote.prom).expect("exposition snapshot is valid");
    assert!(
        families >= 8 && samples > families,
        "expected a populated exposition, got {families} families / {samples} samples"
    );
    assert!(
        promote.prom.contains(&format!(r#"version="v{TO_VERSION}""#)),
        "per-replica series must carry the promoted version label"
    );
}

/// The noisy-neighbor experiment must be byte-stable per seed, and the
/// fairness contract must hold row by row: with QoS off one flooding
/// tenant collapses the behaved tenants' p99 (at least 5x the no-flood
/// baseline); with QoS on the behaved tenants hold within 1.2x of the
/// baseline while the flooder's own p99 degrades and its backlog queues
/// and sheds at the door. Tenant labels appear in the exposition only
/// when the QoS plane is on.
#[test]
fn noisyneighbor_sweep_matches_golden() {
    use onserve_bench::noisyneighbor::{self, Mode};
    let points = noisyneighbor::sweep();
    assert_eq!(
        noisyneighbor::csv(&points),
        golden("noisyneighbor.csv"),
        "noisyneighbor CSV drifted"
    );
    let row = |m: Mode| points.iter().find(|p| p.mode == m).expect("row");
    let (base, off, on) = (row(Mode::Base), row(Mode::QosOff), row(Mode::QosOn));
    for p in &points {
        assert_eq!(
            p.behaved_issued, base.behaved_issued,
            "behaved stream is forked first: identical across rows"
        );
        assert_eq!(
            p.behaved_ok + p.behaved_shed,
            p.behaved_issued,
            "conservation: every behaved request settles"
        );
        assert_eq!(
            p.flood_ok + p.flood_shed,
            p.flood_issued,
            "conservation: every flood request settles"
        );
    }
    assert_eq!(base.flood_issued, 0, "no flood in the baseline row");
    assert_eq!(
        off.flood_issued, on.flood_issued,
        "same seed must offer the same flood"
    );
    // QoS off: the flooder fills the global window and the behaved
    // tenants' p99 collapses
    assert!(
        off.behaved_p99_s >= 5.0 * base.behaved_p99_s,
        "without QoS the flood must collapse behaved p99 ({} s vs baseline {} s)",
        off.behaved_p99_s,
        base.behaved_p99_s
    );
    assert_eq!(off.door_queued + off.door_shed, 0, "no QoS stage when off");
    // QoS on: every behaved tenant holds near the baseline — the worst
    // single tenant, not just the aggregate
    assert!(
        on.worst_p99_s <= 1.2 * base.behaved_p99_s,
        "with QoS the worst behaved tenant must stay within 1.2x baseline ({} s vs {} s)",
        on.worst_p99_s,
        base.behaved_p99_s
    );
    assert_eq!(on.behaved_shed, 0, "QoS must not shed behaved work");
    // ... while the flooder pays: degraded latency, door queueing, sheds
    assert!(
        on.flood_p99_s >= 5.0 * on.behaved_p99_s,
        "the flooder's p99 must degrade under QoS ({} s vs behaved {} s)",
        on.flood_p99_s,
        on.behaved_p99_s
    );
    assert!(on.door_queued > 0, "the flooder's backlog must transit the door queue");
    assert!(on.flood_shed > 0, "the flooder's overflow must shed");
    // the QoS-on exposition carries per-tenant series and satisfies the
    // strict parser; the QoS-off exposition carries none
    let (families, samples) =
        simkit::validate_prometheus_text(&on.prom).expect("exposition snapshot is valid");
    assert!(
        families >= 8 && samples > families,
        "expected a populated exposition, got {families} families / {samples} samples"
    );
    assert!(
        on.prom.contains(r#"tenant=""#),
        "QoS-on exposition must carry tenant labels"
    );
    assert!(
        !off.prom.contains(r#"tenant=""#),
        "QoS-off exposition must stay tenant-label free"
    );
}
