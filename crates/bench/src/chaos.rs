//! The chaos experiment: goodput under a pinned crash schedule, with
//! front-door retry on vs off.
//!
//! A two-replica fleet serves long (200 s) invocations while a seeded
//! [`ChaosMonkey`] hard-kills a replica at three pinned instants; the
//! autoscaler replaces each loss (and nothing else — its load thresholds
//! are parked at infinity so `Replace` is the only decision it can make).
//! Because the service time is twice the inter-crash gap, roughly the
//! whole offered load is in flight whenever a crash lands, so each kill
//! puts about half the outstanding work on the dead replica:
//!
//! * retry **off** — every in-flight request on the victim comes back as
//!   a SOAP fault; over three crashes that is most of the run's traffic.
//! * retry **on** — the dispatcher resolves the same losses as
//!   `BackendLost`, backs off, and re-runs each request on the surviving
//!   replica; only the duplicate service time is paid.
//!
//! The goodput gap between the two rows is the point of the tentpole:
//! the golden test pins the ratio at ≥ 2x.
//!
//! Shared by the `chaos` binary and the golden determinism test so both
//! always describe the same experiment.

use std::rc::Rc;

use fleet::{
    start_open_loop, ArrivalProcess, Autoscaler, AutoscalerConfig, ChaosMonkey, Fleet, FleetSpec,
    Mix, Policy, RetryConfig, StorageTopology, SubmitFn,
};
use onserve::profile::ExecutionProfile;
use simkit::fault::FaultPlan;
use simkit::{Duration, Sim, KB};

use crate::fleetscale::fleet_image;

/// Open-loop offered load, requests/second.
pub const OFFERED_RPS: f64 = 0.5;

/// Seed shared by both rows — the schedule, victims and arrivals must be
/// identical so retry is the only variable.
pub const SEED: u64 = 0xc4a05;

/// Service time of the published executable.
pub fn service_time() -> Duration {
    Duration::from_secs(200)
}

/// Measurement window after the fleet is booted and provisioned.
pub fn horizon() -> Duration {
    Duration::from_secs(500)
}

/// The pinned crash schedule, offsets from the start of load. 100 s
/// between kills leaves room for the ~80 s replacement (autoscaler tick +
/// appliance boot) so the fleet is back to two replicas before the next
/// strike.
pub fn crash_offsets() -> Vec<Duration> {
    vec![
        Duration::from_secs(200),
        Duration::from_secs(300),
        Duration::from_secs(400),
    ]
}

/// One measured row.
pub struct ChaosPoint {
    /// Whether front-door retry was enabled.
    pub retry: bool,
    /// Requests issued by the generator.
    pub issued: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a SOAP fault.
    pub faulted: u64,
    /// Requests shed at the front door.
    pub shed: u64,
    /// Retry attempts the dispatcher made.
    pub retried: u64,
    /// Replicas lost to the chaos schedule.
    pub lost: u64,
    /// Replacement replicas the autoscaler booted.
    pub replaced: u64,
    /// Completions per second over the measurement window.
    pub goodput_rps: f64,
}

fn fleet_spec(retry: bool) -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = 2;
    spec.dispatcher.policy = Policy::RoundRobin;
    // the whole horizon's traffic can be in flight at once
    spec.dispatcher.max_in_flight = 512;
    spec.dispatcher.retry = retry.then(RetryConfig::default);
    spec
}

/// Run one row: boot, provision, unleash the schedule, offer load.
pub fn run_point(retry: bool) -> ChaosPoint {
    let mut sim = Sim::new(SEED);
    let fleet = Fleet::new(&mut sim, fleet_spec(retry));
    sim.run(); // cold-start both appliances
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(service_time())
            .producing(64.0 * KB),
        |_| {},
    );
    sim.run();
    let until = sim.now() + horizon();
    // replacement-only autoscaler: thresholds parked so Replace is the
    // only reachable decision
    let _scaler = Autoscaler::install(
        &mut sim,
        &fleet,
        AutoscalerConfig {
            interval: Duration::from_secs(15),
            cooldown: Duration::from_secs(60),
            scale_up_load: f64::INFINITY,
            scale_down_load: 0.0,
            min_replicas: 2,
            max_replicas: 6,
            ..AutoscalerConfig::default()
        },
        until,
    );
    let mut plan = FaultPlan::new(SEED);
    for t in crash_offsets() {
        plan = plan.crash_at(t);
    }
    let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
    let dispatcher = Rc::clone(fleet.dispatcher());
    let sink: Rc<SubmitFn> = Rc::new(move |sim, req, done| dispatcher.submit(sim, req, done));
    let stats = start_open_loop(
        &mut sim,
        ArrivalProcess::Poisson { rate: OFFERED_RPS },
        Mix::invoke_only(&["app"]),
        sink,
        until,
    );
    sim.run(); // drain every outstanding request and retry
    let c = fleet.dispatcher().counters();
    assert_eq!(
        c.accepted,
        c.completed + c.faulted,
        "request conservation violated"
    );
    assert_eq!(monkey.landed(), fleet.lost_total());
    ChaosPoint {
        retry,
        issued: stats.issued(),
        completed: stats.completed(),
        faulted: stats.faulted(),
        shed: c.shed,
        retried: c.retried,
        lost: fleet.lost_total(),
        replaced: fleet.booted_total() - 2,
        goodput_rps: stats.completed() as f64 / horizon().as_secs_f64(),
    }
}

/// Run both rows (retry on, retry off) in parallel.
pub fn sweep() -> Vec<ChaosPoint> {
    crate::par_sweep(&[true, false], |_, &retry| run_point(retry))
}

/// Render the sweep as the CSV committed under `tests/golden/`.
pub fn csv(points: &[ChaosPoint]) -> String {
    let mut out = String::from(
        "retry,issued,completed,faulted,shed,retried,replicas_lost,replicas_replaced,goodput_rps\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.4}\n",
            if p.retry { "on" } else { "off" },
            p.issued,
            p.completed,
            p.faulted,
            p.shed,
            p.retried,
            p.lost,
            p.replaced,
            p.goodput_rps
        ));
    }
    out
}
