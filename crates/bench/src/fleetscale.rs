//! The fleet-scaling experiment: throughput and latency vs replica count
//! under both storage topologies.
//!
//! §VIII-D ends with the observation that a single appliance saturates on
//! I/O and the remedy is more appliances. This sweep quantifies the
//! remedy's fine print: replicas only buy throughput when the executable
//! database replicates with them. Every point boots a [`fleet::Fleet`] of
//! N appliances, publishes one service, then offers the same open-loop
//! Poisson load through the front-end dispatcher and measures completion
//! throughput plus latency percentiles.
//!
//! The scenario is shaped so the contended resources are cheap to
//! simulate: a small (64 KB) executable — the blob store is byte-accurate,
//! so big executables cost real wall-clock time — combined with a fat
//! (2 MB) result over a thin (2 MB/s) per-replica WAN. One replica
//! therefore completes ~1 request/s end to end. Under
//! [`StorageTopology::Shared`] every invocation's database load also
//! queues on one thin NAS, which caps the whole fleet near the same
//! ~1 request/s no matter how many replicas join; under
//! [`StorageTopology::Replicated`] each appliance carries its own store
//! and throughput grows with N until the offered load is absorbed.
//!
//! Shared by the `fleetscale` binary and the golden determinism test so
//! both always describe the same experiment.

use std::rc::Rc;

use fleet::{
    start_open_loop, ArrivalProcess, Fleet, FleetSpec, Mix, StorageTopology, SubmitFn,
    WorkloadStats,
};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, HostSpec, Sim, KB, MB};
use vappliance::ApplianceImage;

/// Replica counts each topology is swept over.
pub const REPLICAS: [usize; 3] = [1, 2, 4];

/// Open-loop offered load, requests/second.
pub const OFFERED_RPS: f64 = 5.0;

/// Measurement window after the fleet is booted and provisioned.
pub fn horizon() -> Duration {
    Duration::from_secs(120)
}

/// One measured sweep point.
pub struct FleetPoint {
    /// Replica count.
    pub replicas: usize,
    /// Storage topology label (`shared` / `replicated`).
    pub topology: StorageTopology,
    /// Completions per second over the measurement window.
    pub throughput_rps: f64,
    /// Median latency of successful requests, seconds.
    pub p50_s: f64,
    /// 95th percentile latency, seconds.
    pub p95_s: f64,
    /// 99th percentile latency, seconds.
    pub p99_s: f64,
    /// Requests shed at the front door (admission limit).
    pub shed: u64,
    /// Requests issued by the generator.
    pub issued: u64,
    /// Replicas that reached the rotation.
    pub booted: u64,
}

/// The appliance image every replica boots from.
pub fn fleet_image() -> ApplianceImage {
    ApplianceImage {
        name: "onserve".into(),
        bytes: 600.0 * MB,
        boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
        recipe_fingerprint: 1,
    }
}

/// The sweep's fleet configuration for one point.
pub fn fleet_spec(topology: StorageTopology, replicas: usize) -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = topology;
    spec.initial_replicas = replicas;
    // thin per-replica WAN: the 2 MB result serializes for ~1 s per
    // request, making one replica good for ~1 request/s
    spec.base.wan_bandwidth_override = Some(2.0 * MB);
    // the shared store is a thin NAS: a 64 KB executable load occupies its
    // write channel for ~1 s, so the whole fleet shares ~1 request/s of
    // database bandwidth
    spec.shared_storage_spec = HostSpec {
        name: "blobstore".into(),
        cpu_cores: 2.0,
        disk_read_bps: 96.0 * KB,
        disk_write_bps: 64.0 * KB,
    };
    spec
}

/// Run one sweep point: boot, provision, offer load, measure.
pub fn run_point(topology: StorageTopology, replicas: usize, seed: u64) -> FleetPoint {
    let (sim, _fleet, stats, point) = run_point_instrumented(topology, replicas, seed, false);
    drop((sim, stats));
    point
}

/// [`run_point`] but returning the live simulator and stats, and
/// optionally with telemetry enabled — the `--trace` path of the binary
/// uses this to export the span tree of a representative point.
pub fn run_point_instrumented(
    topology: StorageTopology,
    replicas: usize,
    seed: u64,
    telemetry: bool,
) -> (Sim, Rc<Fleet>, Rc<WorkloadStats>, FleetPoint) {
    let mut sim = Sim::new(seed);
    if telemetry {
        sim.enable_telemetry();
    }
    let fleet = Fleet::new(&mut sim, fleet_spec(topology, replicas));
    sim.run(); // cold-start every appliance
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(2))
            .producing(2.0 * MB),
        |_| {},
    );
    sim.run();
    let until = sim.now() + horizon();
    let dispatcher = Rc::clone(fleet.dispatcher());
    let sink: Rc<SubmitFn> = Rc::new(move |sim, req, done| dispatcher.submit(sim, req, done));
    let stats = start_open_loop(
        &mut sim,
        ArrivalProcess::Poisson { rate: OFFERED_RPS },
        Mix::invoke_only(&["app"]),
        sink,
        until,
    );
    sim.run();
    let point = FleetPoint {
        replicas,
        topology,
        throughput_rps: stats.throughput(horizon()),
        p50_s: stats.latency_percentile(50.0),
        p95_s: stats.latency_percentile(95.0),
        p99_s: stats.latency_percentile(99.0),
        shed: fleet.dispatcher().counters().shed,
        issued: stats.issued(),
        booted: fleet.booted_total(),
    };
    (sim, fleet, stats, point)
}

/// Run the full sweep (both topologies × [`REPLICAS`]), one thread per
/// point, seeds fixed per point so the output is reproducible.
pub fn sweep() -> Vec<FleetPoint> {
    let points: Vec<(StorageTopology, usize)> = [StorageTopology::Shared, StorageTopology::Replicated]
        .into_iter()
        .flat_map(|t| REPLICAS.into_iter().map(move |n| (t, n)))
        .collect();
    crate::par_sweep(&points, |i, &(topology, replicas)| {
        run_point(topology, replicas, 0xf1ee7 + i as u64)
    })
}

/// Render the sweep as the CSV committed under `tests/golden/`.
pub fn csv(points: &[FleetPoint]) -> String {
    let mut out =
        String::from("replicas,topology,throughput_rps,p50_s,p95_s,p99_s,shed,issued,booted\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{:.4},{:.3},{:.3},{:.3},{},{},{}\n",
            p.replicas,
            p.topology.label(),
            p.throughput_rps,
            p.p50_s,
            p.p95_s,
            p.p99_s,
            p.shed,
            p.issued,
            p.booted
        ));
    }
    out
}
