//! The rollout experiment: the zero-downtime contract, measured.
//!
//! One three-replica fleet, one seed, one paced arrival schedule — and
//! four ways to move it from v1 to v2:
//!
//! * **restart** — the naive baseline: kill every replica, boot v2.
//!   Everything in flight faults and everything arriving during the
//!   boot window is refused; `dropped > 0` is the row's whole point.
//! * **rolling** — boot a v2 replica, wait until it serves, drain and
//!   retire one v1, repeat. Nothing is dropped, nothing faults.
//! * **canary-promote** — boot one v2 canary, shift half the affinity
//!   pins and half of first-sight traffic onto it, judge its windowed
//!   p99 against the v1 pack for four minutes, then promote into the
//!   rolling path. Nothing is dropped and the fleet ends on v2.
//! * **canary-rollback** — same schedule, but a seeded [`ChaosMonkey`]
//!   `slow_at` lemon degrades the canary to 10× mid-judgment. The judge
//!   fails it, the rollback drains the canary, restores every shifted
//!   pin, and reverts the target version; the fleet ends on v1 with its
//!   final-window p99 back at the healthy baseline.
//!
//! All four rows share [`SEED`] and the arrival schedule, so the
//! strategy is the only variable. The golden test pins the CSV
//! byte-for-byte and asserts the contract row by row.
//!
//! Shared by the `rollout` binary and the golden determinism test so
//! both always describe the same experiment.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fleet::{
    AffinityConfig, CanaryConfig, ChaosMonkey, Fleet, FleetSpec, HealthConfig, HealthPlane,
    Policy, Request, RolloutConfig, RolloutController, RolloutOutcome, RolloutStrategy,
    StorageTopology,
};
use onserve::profile::ExecutionProfile;
use simkit::fault::FaultPlan;
use simkit::{Duration, Sim, SimTime, KB};

use crate::fleetscale::fleet_image;

/// Seed shared by all four rows — arrivals, boots, and pin placement
/// must be identical so the strategy is the only variable.
pub const SEED: u64 = 0x726f_6c6c; // "roll"

/// Fault-plan seed for the rollback row's lemon, probed so the uniform
/// `slow_at` draw among the four actives lands on the canary. The
/// runtime assert (`rollbacks == 1`) keeps it honest: a slowed *peer*
/// would make the canary look good and promote instead.
pub const LEMON_SEED: u64 = 0;

/// Replicas booted before load starts.
pub const REPLICAS: usize = 3;

/// Version every row rolls toward (the fleet starts at 1).
pub const TO_VERSION: u32 = 2;

/// Latency multiplier the rollback row's lemon applies to the canary.
pub const SLOW_FACTOR: f64 = 10.0;

/// Deterministic arrival spacing, fleet-wide — same pacing as the
/// gray-failure experiment: comfortably under capacity at three
/// replicas and ~15.5 s per answer.
pub fn arrival_gap() -> Duration {
    Duration::from_secs(6)
}

/// Measurement window after the fleet is booted and provisioned.
pub fn horizon() -> Duration {
    Duration::from_secs(1200)
}

/// Offset of the rollout kickoff from the start of load.
pub fn roll_offset() -> Duration {
    Duration::from_secs(60)
}

/// Offset of the rollback row's slow strike — the canary is active and
/// under judgment by then (kickoff + ~75 s boot).
pub fn lemon_offset() -> Duration {
    Duration::from_secs(180)
}

/// Canary judgment knobs shared by both canary rows.
pub fn canary_config() -> CanaryConfig {
    CanaryConfig {
        pin_fraction: 0.5,
        first_sight_pct: 50,
        judgment: Duration::from_secs(240),
        p99_factor: 3.0,
        min_samples: 2,
    }
}

/// Windowing tuned to the appliance's ~15.5 s invoke latency, wide
/// enough to hold a 10×-degraded canary's completions.
pub fn health_config() -> HealthConfig {
    HealthConfig {
        window: Duration::from_secs(30),
        ring: 16,
        lookback: Duration::from_secs(240),
        interval: Duration::from_secs(30),
        latency_factor: 3.0,
        min_samples: 2,
        probation_strikes: 2,
        eject_strikes: 6,
        ..HealthConfig::default()
    }
}

/// The four upgrade strategies under measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RolloutMode {
    /// Kill everything, boot v2 — the dropped-work baseline.
    Restart,
    /// Boot-then-retire, one replica at a time.
    Rolling,
    /// Canary judged healthy, promoted into the rolling path.
    CanaryPromote,
    /// Canary degraded by the lemon, auto-rolled back.
    CanaryRollback,
}

impl RolloutMode {
    /// Row label used in the CSV.
    pub fn label(&self) -> &'static str {
        match self {
            RolloutMode::Restart => "restart",
            RolloutMode::Rolling => "rolling",
            RolloutMode::CanaryPromote => "canary-promote",
            RolloutMode::CanaryRollback => "canary-rollback",
        }
    }
}

/// One measured row.
pub struct RolloutPoint {
    /// Strategy this row ran.
    pub mode: RolloutMode,
    /// Requests issued by the pacer.
    pub issued: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that never got a good answer (refused or faulted).
    pub dropped: u64,
    /// Requests answered with a SOAP fault.
    pub failed: u64,
    /// Old-version replicas the controller retired and replaced.
    pub replaced: u64,
    /// Rollbacks the controller executed.
    pub rollbacks: u64,
    /// How the rollout ended.
    pub outcome: &'static str,
    /// Final `version:count` census, `|`-joined.
    pub versions: String,
    /// Fleet-wide windowed p99 over the final lookback, seconds.
    pub fleet_p99_s: f64,
    /// Prometheus text exposition captured at the end of the run.
    pub prom: String,
}

fn fleet_spec() -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = REPLICAS;
    spec.dispatcher.policy = Policy::RoundRobin;
    spec.dispatcher.max_in_flight = 1024;
    // canary pin shifts ride the affinity plane
    spec.dispatcher.affinity = Some(AffinityConfig::default());
    spec.base.config.cache_grid_sessions = true;
    spec
}

/// Fixed-interval pacer cycling three tenants, counting completions.
fn pace(
    sim: &mut Sim,
    fleet: &Rc<Fleet>,
    until: SimTime,
    n: u64,
    issued: Rc<Cell<u64>>,
    ok: Rc<Cell<u64>>,
    bad: Rc<Cell<u64>>,
) {
    if sim.now() > until {
        return;
    }
    const TENANTS: [&str; 3] = ["alice", "bob", "carol"];
    issued.set(issued.get() + 1);
    let (c, f) = (Rc::clone(&ok), Rc::clone(&bad));
    fleet.dispatcher().clone().submit(
        sim,
        Request::Invoke {
            service: "app".into(),
            args: Vec::new(),
            principal: Some(TENANTS[(n % 3) as usize].into()),
        },
        Box::new(move |_, res| {
            if res.is_ok() {
                c.set(c.get() + 1);
            } else {
                f.set(f.get() + 1);
            }
        }),
    );
    let fl = Rc::clone(fleet);
    sim.schedule(arrival_gap(), move |sim| {
        pace(sim, &fl, until, n + 1, issued, ok, bad)
    });
}

/// Run one row with an explicit lemon seed (only the rollback row arms
/// the lemon). [`run_point`] is the pinned-seed entry everything else
/// uses.
pub fn run_point_seeded(mode: RolloutMode, lemon_seed: u64) -> RolloutPoint {
    let mut sim = Sim::new(SEED);
    let fleet = Fleet::new(&mut sim, fleet_spec());
    sim.run(); // cold-start all appliances
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_millis(200))
            .producing(16.0 * KB),
        |_| {},
    );
    sim.run();
    let plane = HealthPlane::new(health_config());
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();
    let until = t0 + horizon();
    let monkey = (mode == RolloutMode::CanaryRollback).then(|| {
        ChaosMonkey::unleash(
            &mut sim,
            &fleet,
            &FaultPlan::new(lemon_seed).slow_at(lemon_offset(), SLOW_FACTOR),
        )
    });
    let cfg = match mode {
        RolloutMode::Restart => RolloutConfig::restart(TO_VERSION),
        RolloutMode::Rolling => RolloutConfig {
            min_healthy: 2,
            ..RolloutConfig::rolling(TO_VERSION)
        },
        RolloutMode::CanaryPromote | RolloutMode::CanaryRollback => RolloutConfig {
            strategy: RolloutStrategy::Canary(canary_config()),
            min_healthy: 2,
            ..RolloutConfig::rolling(TO_VERSION)
        },
    };
    let ctl: Rc<RefCell<Option<Rc<RolloutController>>>> = Rc::new(RefCell::new(None));
    let (f2, c2) = (Rc::clone(&fleet), Rc::clone(&ctl));
    sim.schedule(roll_offset(), move |sim| {
        *c2.borrow_mut() = Some(RolloutController::start(sim, &f2, cfg));
    });
    let issued = Rc::new(Cell::new(0u64));
    let ok = Rc::new(Cell::new(0u64));
    let bad = Rc::new(Cell::new(0u64));
    pace(
        &mut sim,
        &fleet,
        until,
        0,
        Rc::clone(&issued),
        Rc::clone(&ok),
        Rc::clone(&bad),
    );
    sim.run_until(until);
    // the final-lookback p99 and the exposition, read before the drain
    let fleet_p99_s = plane.fleet_p99(sim.now()).unwrap_or(-1.0);
    let prom = plane.prometheus_text(sim.now());
    sim.run(); // drain everything still in flight
    if let Some(m) = &monkey {
        assert_eq!(m.slowed(), 1, "the pinned lemon strike landed");
    }
    let ctl = ctl.borrow().clone().expect("rollout started");
    let c = fleet.dispatcher().counters();
    assert_eq!(c.accepted + c.shed, issued.get(), "door ledger");
    assert_eq!(ok.get() + bad.get(), c.accepted + c.shed, "every request answered");
    assert_eq!(fleet.dispatcher().in_flight(), 0, "drained");
    let versions = fleet
        .version_counts()
        .into_iter()
        .map(|(v, n)| format!("{v}:{n}"))
        .collect::<Vec<_>>()
        .join("|");
    RolloutPoint {
        mode,
        issued: issued.get(),
        completed: ok.get(),
        dropped: issued.get() - ok.get(),
        failed: c.faulted,
        replaced: ctl.replaced(),
        rollbacks: ctl.rollbacks(),
        outcome: match ctl.outcome() {
            None => "pending",
            Some(RolloutOutcome::Completed) => "completed",
            Some(RolloutOutcome::Promoted) => "promoted",
            Some(RolloutOutcome::RolledBack) => "rolled-back",
        },
        versions,
        fleet_p99_s,
        prom,
    }
}

/// Run one row under the pinned [`LEMON_SEED`], asserting the outcome
/// the row exists to demonstrate.
pub fn run_point(mode: RolloutMode) -> RolloutPoint {
    let p = run_point_seeded(mode, LEMON_SEED);
    let want = match mode {
        RolloutMode::Restart | RolloutMode::Rolling => "completed",
        RolloutMode::CanaryPromote => "promoted",
        RolloutMode::CanaryRollback => "rolled-back",
    };
    assert_eq!(p.outcome, want, "{} rollout outcome", p.mode.label());
    if mode == RolloutMode::CanaryRollback {
        assert_eq!(p.rollbacks, 1, "exactly one rollback");
    }
    p
}

/// Run all four rows in parallel.
pub fn sweep() -> Vec<RolloutPoint> {
    crate::par_sweep(
        &[
            RolloutMode::Restart,
            RolloutMode::Rolling,
            RolloutMode::CanaryPromote,
            RolloutMode::CanaryRollback,
        ],
        |_, &mode| run_point(mode),
    )
}

/// Render the sweep as the CSV committed under `tests/golden/`.
pub fn csv(points: &[RolloutPoint]) -> String {
    let mut out = String::from(
        "mode,issued,completed,dropped,failed,replaced,rollbacks,outcome,versions,fleet_p99_s\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.4}\n",
            p.mode.label(),
            p.issued,
            p.completed,
            p.dropped,
            p.failed,
            p.replaced,
            p.rollbacks,
            p.outcome,
            p.versions,
            p.fleet_p99_s,
        ));
    }
    out
}
