//! The geo-distribution experiment: multi-site placement, latency-aware
//! routing, and federation under a mid-run site outage.
//!
//! Six replicas span three sites (two per site) behind one dispatcher.
//! A follow-the-sun pacer offers a burst of six invocations every nine
//! seconds, rotating the request origin east → central → west across the
//! run, and the geo plane charges every cross-site answer a WAN round
//! trip (latency + payload transfer). Five rows share the seed, the
//! burst schedule, and the site map — only the routing/fault knobs move:
//!
//! * `roundrobin` — site-oblivious round-robin; two thirds of the
//!   answers pay a WAN round trip.
//! * `nearest` — the dispatcher routes to the origin's site first,
//!   spilling to the next-nearest site only when every origin replica is
//!   at the spill threshold. Mean latency drops against `roundrobin`.
//! * `degraded` — `nearest` with the plan's link faults wired into the
//!   WAN model: each cross-site hop can drop (one retransmit penalty)
//!   and carries exponential jitter. Mean latency rises above `nearest`.
//! * `oblivious` — sticky sessions but no geo routing; a pinned site
//!   outage mid-run blackholes every request still routed there until
//!   the per-request watchdog ejects the severed replicas. Requests
//!   fault; accepted work is lost to timeouts.
//! * `federated` — full geo routing plus HTCondor-C-style federation:
//!   pinned work addressed to the severed site is forwarded to peer
//!   sites without re-pinning, answers produced behind the partition are
//!   held and pulled back on reconnect, and parked watchdogs wait the
//!   outage out. Zero requests fault; every accepted request completes.
//!
//! The golden test pins the CSV byte-for-byte and asserts the headline
//! ordering: nearest beats round-robin on mean latency, link faults cost
//! real latency, federation loses nothing where the oblivious control
//! times out.
//!
//! Shared by the `geo` binary and the golden determinism test so both
//! always describe the same experiment.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fleet::{
    ChaosMonkey, Fleet, FleetSpec, GeoPlane, HealthConfig, HealthPlane, Policy, Request, SiteMap,
    StorageTopology,
};
use gridsim::SiteSpec;
use onserve::profile::ExecutionProfile;
use simkit::fault::FaultPlan;
use simkit::{Duration, Sim, KB};

use crate::fleetscale::fleet_image;

/// Seed shared by every row — arrivals, placement, and the outage victim
/// must be identical so the routing/federation knobs are the only
/// variables.
pub const SEED: u64 = 0x6765_6f31;

/// Replicas booted before load starts (two per site).
pub const REPLICAS: usize = 6;

/// Distinct principals cycled by the pacer (sticky rows only).
pub const TENANTS: usize = 18;

/// Steady arrival gap: one invocation every four seconds. The invoke
/// pipeline runs ~12 s end to end, so ~3 requests are always in flight —
/// comfortably inside one site's spill budget, but enough that a site
/// outage always catches work mid-service.
pub fn arrival_gap() -> Duration {
    Duration::from_secs(4)
}

/// Measurement window; also the follow-the-sun period, so each site is
/// the request origin for exactly one third of the run.
pub fn horizon() -> Duration {
    Duration::from_secs(900)
}

/// Offset of the pinned site outage from the start of load. With work
/// always in flight, the sever catches answers mid-production — they are
/// held behind the partition and pulled back on reconnect.
pub fn outage_offset() -> Duration {
    Duration::from_secs(325)
}

/// Length of the pinned site outage.
pub fn outage_duration() -> Duration {
    Duration::from_secs(180)
}

/// Per-request watchdog in the outage rows: long enough for healthy WAN
/// answers, far shorter than the outage.
pub fn request_timeout() -> Duration {
    Duration::from_secs(120)
}

/// Answer payload carried back across the WAN, bytes. At the paper's
/// measured ~85 KB/s access rate a cross-site answer pays ~3 s of
/// transfer on top of double the one-way latency — the WAN, not the
/// appliance, is the cost nearest-site routing avoids.
pub fn payload_bytes() -> f64 {
    256.0 * KB
}

/// Outstanding-per-replica depth at which nearest-site routing spills to
/// the next site: route to an *idle* origin replica, else spill. With
/// ~3 requests always in flight this keeps most — not all — answers
/// local, so the degraded row's link faults have real WAN traffic to
/// land on.
pub const SPILL_THRESHOLD: usize = 1;

/// The three sites: TeraGrid-flavoured centres with distinct access-layer
/// WAN characteristics, east the best connected.
pub fn sites() -> Vec<SiteSpec> {
    let mut east = SiteSpec::teragrid_like("east", 64, 4);
    east.wan_latency = Duration::from_millis(30);
    east.wan_bandwidth_bps = 100.0 * KB;
    let central = SiteSpec::teragrid_like("central", 64, 4);
    let mut west = SiteSpec::teragrid_like("west", 64, 4);
    west.wan_latency = Duration::from_millis(55);
    west.wan_bandwidth_bps = 70.0 * KB;
    vec![east, central, west]
}

/// One experiment row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeoMode {
    /// Site-oblivious round-robin over all replicas.
    RoundRobin,
    /// Nearest-site-first routing with load spill.
    Nearest,
    /// Nearest-site routing over a faulty WAN (drops + jitter).
    Degraded,
    /// Sticky sessions, no geo routing, pinned site outage.
    Oblivious,
    /// Geo routing + federation, same pinned site outage.
    Federated,
}

impl GeoMode {
    /// CSV label.
    pub fn label(self) -> &'static str {
        match self {
            GeoMode::RoundRobin => "roundrobin",
            GeoMode::Nearest => "nearest",
            GeoMode::Degraded => "degraded",
            GeoMode::Oblivious => "oblivious",
            GeoMode::Federated => "federated",
        }
    }

    fn dispatcher_geo(self) -> bool {
        matches!(self, GeoMode::Nearest | GeoMode::Degraded | GeoMode::Federated)
    }

    fn sticky(self) -> bool {
        matches!(self, GeoMode::Oblivious | GeoMode::Federated)
    }

    fn outage(self) -> bool {
        matches!(self, GeoMode::Oblivious | GeoMode::Federated)
    }
}

/// All rows, sweep order.
pub const MODES: [GeoMode; 5] = [
    GeoMode::RoundRobin,
    GeoMode::Nearest,
    GeoMode::Degraded,
    GeoMode::Oblivious,
    GeoMode::Federated,
];

/// One measured row.
pub struct GeoPoint {
    /// Which knobs were on.
    pub mode: GeoMode,
    /// Requests issued by the pacer.
    pub issued: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a fault (timeout/ejection).
    pub faulted: u64,
    /// Requests refused at the door.
    pub shed: u64,
    /// Pinned attempts forwarded to a peer site during the outage.
    pub forwarded: u64,
    /// Answers held behind the partition and pulled back on reconnect.
    pub results_pulled: u64,
    /// Requests that vanished into the severed site.
    pub blackholed: u64,
    /// Cross-site answer deliveries (WAN round trips paid).
    pub wan_hops: u64,
    /// Link transfer passes dropped by the fault injector.
    pub link_drops: u64,
    /// Mean end-to-end latency over completed requests, milliseconds.
    pub mean_ms: f64,
    /// p99 end-to-end latency over completed requests, milliseconds.
    pub p99_ms: f64,
    /// Prometheus exposition captured at the end of the run (per-replica
    /// series carry `site` labels).
    pub prom: String,
}

fn fleet_spec(mode: GeoMode) -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = REPLICAS;
    spec.dispatcher.max_in_flight = 1024;
    if mode == GeoMode::RoundRobin {
        spec.dispatcher.policy = Policy::RoundRobin;
    }
    if mode.sticky() {
        spec.dispatcher.affinity = Some(fleet::AffinityConfig::default());
    }
    if mode.outage() {
        // fail fast on loss: the rows measure what the *routing* saves,
        // not what retries can claw back
        spec.dispatcher.request_timeout = Some(request_timeout());
        spec.dispatcher.retry = None;
    }
    spec
}

/// Fixed-schedule pacer: one invocation every [`arrival_gap`], origin
/// following the sun, principals cycling (sticky rows only).
#[allow(clippy::too_many_arguments)]
fn pace(
    sim: &mut Sim,
    fleet: &Rc<Fleet>,
    geo: &Rc<GeoPlane>,
    sticky: bool,
    t0: simkit::SimTime,
    until: simkit::SimTime,
    n: u64,
    issued: Rc<Cell<u64>>,
    ok: Rc<Cell<u64>>,
    bad: Rc<Cell<u64>>,
    latencies: Rc<RefCell<Vec<f64>>>,
) {
    if sim.now() > until {
        return;
    }
    geo.set_origin(geo.map().sun_origin(sim.now() - t0, horizon()));
    issued.set(issued.get() + 1);
    let principal = sticky.then(|| format!("t{:02}", n % TENANTS as u64));
    let (c, f, lat) = (Rc::clone(&ok), Rc::clone(&bad), Rc::clone(&latencies));
    let sent = sim.now();
    fleet.dispatcher().clone().submit(
        sim,
        Request::Invoke {
            service: "app".into(),
            args: Vec::new(),
            principal,
        },
        Box::new(move |sim, res| {
            if res.is_ok() {
                c.set(c.get() + 1);
                lat.borrow_mut().push((sim.now() - sent).as_secs_f64());
            } else {
                f.set(f.get() + 1);
            }
        }),
    );
    let (fl, g) = (Rc::clone(fleet), Rc::clone(geo));
    sim.schedule(arrival_gap(), move |sim| {
        pace(sim, &fl, &g, sticky, t0, until, n + 1, issued, ok, bad, latencies)
    });
}

/// Run one row: boot, provision, attach the planes, optionally unleash
/// the outage, offer the burst schedule, drain completely.
pub fn run_point(mode: GeoMode) -> GeoPoint {
    let mut sim = Sim::new(SEED);
    let fleet = Fleet::new(&mut sim, fleet_spec(mode));
    // attach the planes before the boots scheduled by `Fleet::new` run, so
    // every replica activates with its site placement (WAN costs, outage
    // blackholing) and a site-labelled health series
    let plane = HealthPlane::new(HealthConfig::default());
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let geo = GeoPlane::new(SiteMap::from_specs(&sites()));
    geo.set_payload_bytes(payload_bytes());
    geo.set_spill_threshold(SPILL_THRESHOLD);
    if mode == GeoMode::Federated {
        geo.set_federation(true);
    }
    let injector = (mode == GeoMode::Degraded).then(|| {
        let inj = FaultPlan::new(SEED)
            .link_drop(0.1)
            .link_extra_delay(Duration::from_millis(250))
            .injector();
        geo.set_injector(Rc::clone(&inj));
        inj
    });
    fleet.attach_geo(Rc::clone(&geo));
    if mode.dispatcher_geo() {
        fleet.dispatcher().set_geo(Rc::clone(&geo));
    }
    sim.run(); // cold-start all appliances
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(2))
            .producing(16.0 * KB),
        |_| {},
    );
    sim.run();

    let t0 = sim.now();
    let monkey = mode.outage().then(|| {
        ChaosMonkey::unleash(
            &mut sim,
            &fleet,
            &FaultPlan::new(SEED).site_down(outage_offset(), outage_duration()),
        )
    });
    let issued = Rc::new(Cell::new(0u64));
    let ok = Rc::new(Cell::new(0u64));
    let bad = Rc::new(Cell::new(0u64));
    let latencies: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    pace(
        &mut sim,
        &fleet,
        &geo,
        mode.sticky(),
        t0,
        t0 + horizon(),
        0,
        Rc::clone(&issued),
        Rc::clone(&ok),
        Rc::clone(&bad),
        Rc::clone(&latencies),
    );
    sim.run(); // drain every outstanding answer, hold, and watchdog
    if let Some(m) = &monkey {
        assert_eq!(m.site_outages(), 1, "the pinned outage registered");
    }

    let mut lat = latencies.borrow().clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let p99 = if lat.is_empty() {
        0.0
    } else {
        lat[((lat.len() as f64 * 0.99).ceil() as usize).min(lat.len()) - 1]
    };
    let d = fleet.dispatcher().counters();
    let g = geo.counters();
    GeoPoint {
        mode,
        issued: issued.get(),
        completed: ok.get(),
        faulted: bad.get(),
        shed: d.shed,
        forwarded: d.forwarded,
        results_pulled: g.results_pulled,
        blackholed: g.blackholed,
        wan_hops: g.wan_hops,
        link_drops: injector.map_or(0, |i| i.counts().link_drops),
        mean_ms: mean * 1000.0,
        p99_ms: p99 * 1000.0,
        prom: plane.prometheus_text(sim.now()),
    }
}

/// Run every row in parallel.
pub fn sweep() -> Vec<GeoPoint> {
    crate::par_sweep(&MODES, |_, &mode| run_point(mode))
}

/// Render the sweep as the CSV committed under `tests/golden/`.
pub fn csv(points: &[GeoPoint]) -> String {
    let mut out = String::from(
        "mode,issued,completed,faulted,shed,forwarded,results_pulled,blackholed,wan_hops,link_drops,mean_ms,p99_ms\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{:.2},{:.2}\n",
            p.mode.label(),
            p.issued,
            p.completed,
            p.faulted,
            p.shed,
            p.forwarded,
            p.results_pulled,
            p.blackholed,
            p.wan_hops,
            p.link_drops,
            p.mean_ms,
            p.p99_ms,
        ));
    }
    out
}
