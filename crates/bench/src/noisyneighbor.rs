//! The noisy-neighbor experiment: per-tenant QoS at the front door
//! under a single flooding tenant.
//!
//! A four-replica fleet serves 23 well-behaved tenants offering a light
//! aggregate load, plus one flooding tenant offering more than the whole
//! fleet's capacity. Three rows, same seed — the behaved arrival stream
//! is forked first so it is byte-identical whether or not the flood runs:
//!
//! * **base** — no flood: the behaved tenants' no-contention baseline.
//! * **off** — flood on, QoS off: the flooder grabs the entire global
//!   admission window, every admitted behaved request sits behind
//!   hundreds of flood requests, and behaved p99 collapses.
//! * **on** — flood on, QoS on: the behaved tenants are registered gold;
//!   the flooder arrives unregistered and rides the batch tier, so its
//!   admission quota is a sliver of the window, its backlog waits in its
//!   own bounded door queue (overflow shed, counted per tenant), and the
//!   behaved tenants' p99 holds at the baseline while the flooder's
//!   degrades.
//!
//! The golden test pins the fairness claim: `on` behaved p99 within 1.2×
//! of `base`, `off` behaved p99 at least 5× worse, flooder p99 under QoS
//! at least 5× the behaved p99 — same seed, byte-identical CSV and
//! Prometheus exposition (`tenant="..."` labels appear only in the QoS
//! row).
//!
//! Shared by the `noisyneighbor` binary and the golden determinism test
//! so both always describe the same experiment.

use std::rc::Rc;

use fleet::{
    start_open_loop, ArrivalProcess, Fleet, FleetSpec, HealthConfig, HealthPlane, Mix, Policy,
    QosConfig, QosTier, StorageTopology, SubmitFn,
};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, Sim, KB};

use crate::fleetscale::fleet_image;

/// Seed shared by all rows.
pub const SEED: u64 = 0x9019;

/// Well-behaved tenants (`user1` .. `user23`), registered gold under QoS.
pub const BEHAVED_TENANTS: usize = 23;

/// Aggregate behaved offered load, requests/second — far below capacity.
pub const BEHAVED_RPS: f64 = 0.4;

/// The flooding tenant's offered load, requests/second — alone above the
/// whole fleet's ~3.8 req/s capacity.
pub const FLOOD_RPS: f64 = 6.0;

/// The flooding tenant's principal. Deliberately *not* in the QoS tier
/// map: unknown tenants ride the configured default tier.
pub const FLOOD_TENANT: &str = "flood";

/// Replicas behind the dispatcher.
pub const REPLICAS: usize = 4;

/// Global admission window. Large enough that, QoS off, the flooder's
/// backlog queues deep inside the replicas instead of shedding at the
/// door — the collapse the QoS row prevents.
pub const MAX_IN_FLIGHT: usize = 320;

/// Per-tenant door-queue bound under QoS.
pub const QUEUE_DEPTH: usize = 64;

/// Measurement window after boot and provisioning.
pub fn horizon() -> Duration {
    Duration::from_secs(600)
}

/// The three experiment rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Behaved tenants only — the no-flood baseline.
    Base,
    /// Flood on, QoS off: one global window, first come first served.
    QosOff,
    /// Flood on, QoS on: quotas + weighted fair queueing.
    QosOn,
}

impl Mode {
    /// All rows, in golden-CSV order.
    pub const ALL: [Mode; 3] = [Mode::Base, Mode::QosOff, Mode::QosOn];

    /// The CSV row label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Base => "base",
            Mode::QosOff => "off",
            Mode::QosOn => "on",
        }
    }
}

/// One measured row.
pub struct NoisyPoint {
    /// Which row this is.
    pub mode: Mode,
    /// Behaved requests issued (identical across rows by construction).
    pub behaved_issued: u64,
    /// Behaved requests answered successfully.
    pub behaved_ok: u64,
    /// Behaved requests answered with a fault (sheds included).
    pub behaved_shed: u64,
    /// Behaved p99 latency across all 23 tenants, seconds.
    pub behaved_p99_s: f64,
    /// The worst single behaved tenant's p99, seconds.
    pub worst_p99_s: f64,
    /// Flood requests issued (0 in the base row).
    pub flood_issued: u64,
    /// Flood requests answered successfully.
    pub flood_ok: u64,
    /// Flood requests answered with a fault (sheds included).
    pub flood_shed: u64,
    /// Flooder p99 latency, seconds (0 in the base row).
    pub flood_p99_s: f64,
    /// Requests that transited a QoS door queue.
    pub door_queued: u64,
    /// Requests shed by the QoS stage (queue overflow / dead fleet).
    pub door_shed: u64,
    /// Prometheus text exposition captured at the end of the run.
    pub prom: String,
}

fn fleet_spec() -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = REPLICAS;
    spec.dispatcher.policy = Policy::RoundRobin;
    spec.dispatcher.max_in_flight = MAX_IN_FLIGHT;
    spec
}

/// The QoS plane the `on` row runs: behaved tenants registered gold,
/// unknown tenants (the flooder) defaulted to batch, no borrowing — the
/// flooder's quota is `max(1, 320·1/93) = 3` admission slots.
pub fn qos_config() -> QosConfig {
    QosConfig {
        default_tier: QosTier::Batch,
        tiers: (1..=BEHAVED_TENANTS)
            .map(|i| (format!("user{i}"), QosTier::Gold))
            .collect(),
        queue_depth: QUEUE_DEPTH,
        borrow: 0,
    }
}

/// Run one row: boot, publish, offer the behaved stream (plus the flood
/// in non-base rows) and read the tenant-sliced stats at the end.
pub fn run_point(mode: Mode) -> NoisyPoint {
    let mut sim = Sim::new(SEED);
    sim.enable_telemetry();
    let fleet = Fleet::new(&mut sim, fleet_spec());
    sim.run(); // cold-start the replicas
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(2))
            .producing(16.0 * KB),
        |_| {},
    );
    sim.run();
    let plane = HealthPlane::new(HealthConfig::default());
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    if mode == Mode::QosOn {
        fleet.dispatcher().set_qos(qos_config());
    }
    let until = sim.now() + horizon();
    let dispatcher = Rc::clone(fleet.dispatcher());
    let sink: Rc<SubmitFn> = Rc::new(move |sim, req, done| dispatcher.submit(sim, req, done));
    // the behaved generator forks its rng stream FIRST, so its arrival
    // schedule is bit-identical whether or not the flood starts
    let behaved_targets: Vec<(String, String)> = (1..=BEHAVED_TENANTS)
        .map(|i| ("app".to_owned(), format!("user{i}")))
        .collect();
    let behaved_refs: Vec<(&str, &str)> = behaved_targets
        .iter()
        .map(|(s, p)| (s.as_str(), p.as_str()))
        .collect();
    let behaved = start_open_loop(
        &mut sim,
        ArrivalProcess::Poisson { rate: BEHAVED_RPS },
        Mix::invoke_as(&behaved_refs),
        Rc::clone(&sink),
        until,
    );
    behaved.track_tenants();
    let flood = (mode != Mode::Base).then(|| {
        start_open_loop(
            &mut sim,
            ArrivalProcess::Poisson { rate: FLOOD_RPS },
            Mix::invoke_as(&[("app", FLOOD_TENANT)]),
            sink,
            until,
        )
    });
    sim.run(); // drain every outstanding request
    let end = sim.now();
    // conservation: the generators' ledgers close, and so does the door's
    assert_eq!(behaved.issued(), behaved.completed() + behaved.faulted());
    if let Some(f) = &flood {
        assert_eq!(f.issued(), f.completed() + f.faulted());
    }
    let c = fleet.dispatcher().counters();
    assert_eq!(c.accepted, c.completed + c.faulted, "outcome ledger");
    let offered = behaved.issued() + flood.as_ref().map_or(0, |f| f.issued());
    assert_eq!(c.accepted + c.shed, offered, "door ledger");
    if mode == Mode::QosOn {
        for (t, s) in fleet.dispatcher().qos_tenants() {
            assert_eq!(
                s.issued,
                s.accepted + s.shed,
                "{t}: per-tenant conservation after drain"
            );
            assert_eq!(s.queued, 0, "{t}: door queue drained");
            assert_eq!(s.in_flight, 0, "{t}: per-tenant in-flight drained");
        }
    }
    let worst_p99_s = behaved
        .tenants()
        .iter()
        .map(|t| behaved.tenant_latency_percentile(t, 99.0))
        .fold(0.0, f64::max);
    let t = sim.telemetry().expect("telemetry on");
    NoisyPoint {
        mode,
        behaved_issued: behaved.issued(),
        behaved_ok: behaved.completed(),
        behaved_shed: behaved.faulted(),
        behaved_p99_s: behaved.latency_percentile(99.0),
        worst_p99_s,
        flood_issued: flood.as_ref().map_or(0, |f| f.issued()),
        flood_ok: flood.as_ref().map_or(0, |f| f.completed()),
        flood_shed: flood.as_ref().map_or(0, |f| f.faulted()),
        flood_p99_s: flood.as_ref().map_or(0.0, |f| f.latency_percentile(99.0)),
        door_queued: t.counter("dispatcher.qos_enqueued"),
        door_shed: t.counter("dispatcher.qos_shed"),
        prom: plane.prometheus_text(end),
    }
}

/// Run all three rows in parallel.
pub fn sweep() -> Vec<NoisyPoint> {
    crate::par_sweep(&Mode::ALL, |_, &mode| run_point(mode))
}

/// Render the sweep as the CSV committed under `tests/golden/`.
pub fn csv(points: &[NoisyPoint]) -> String {
    let mut out = String::from(
        "mode,behaved_issued,behaved_ok,behaved_shed,behaved_p99_s,worst_p99_s,flood_issued,flood_ok,flood_shed,flood_p99_s,door_queued,door_shed\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{:.4},{},{},{},{:.4},{},{}\n",
            p.mode.label(),
            p.behaved_issued,
            p.behaved_ok,
            p.behaved_shed,
            p.behaved_p99_s,
            p.worst_p99_s,
            p.flood_issued,
            p.flood_ok,
            p.flood_shed,
            p.flood_p99_s,
            p.door_queued,
            p.door_shed,
        ));
    }
    out
}
