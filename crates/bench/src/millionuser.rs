//! The million-principal scale experiment: a fleet day at population
//! scale, driven end to end through the timer-wheel kernel.
//!
//! The ROADMAP's north star is "millions of users"; the paper's §VIII
//! discussion targets production grids serving large populations. This
//! experiment is the repo's proof that the simulation kernel now carries
//! that scale: an eight-replica fleet behind the sticky dispatcher serves
//! two simulated days of open-loop diurnal traffic whose requests carry
//! principals drawn uniformly from a two-million-user population —
//! ≥ 1M *distinct* principals at full scale, on the order of 10⁸ kernel
//! events.
//!
//! The principal here is purely the dispatcher's session-affinity routing
//! key (services authenticate as their owner, not the caller), so the
//! population costs no per-user grid enrolment — which is exactly how the
//! fleet tier's sticky routing is meant to absorb a large user base.
//!
//! Everything reported in the CSV is virtual-time state — counts and
//! latencies — so a same-seed double run is byte-identical; wall-clock
//! throughput (the kernel events/second the host actually sustained) is
//! returned separately and asserted against a floor by the binary, never
//! written to the golden file.
//!
//! Shared by the `millionuser` binary and the golden determinism test so
//! both always describe the same experiment.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fleet::{
    start_open_loop, AffinityConfig, ArrivalProcess, Fleet, FleetSpec, Mix, Policy, Request,
    StorageTopology, SubmitFn,
};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, Sim, KB};

use crate::fleetscale::fleet_image;

/// Seed for the whole run — boot, arrivals, and principal draws.
pub const SEED: u64 = 0x1_000_000;

/// Replicas behind the dispatcher.
pub const REPLICAS: usize = 8;

/// Session-affinity pin-table capacity. Far below the population on
/// purpose: at million-principal scale the LRU *must* churn, and the run
/// proves routing stays cheap while it does.
pub const AFFINITY_CAPACITY: usize = 1 << 16;

/// One scale of the experiment: the full million-principal day, or the
/// CI-sized shrink of the same shape.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Row label in the CSV.
    pub label: &'static str,
    /// Principal population the requests draw from, uniformly.
    pub population: u64,
    /// Trough of the diurnal arrival curve, requests/second.
    pub base_rps: f64,
    /// Crest of the diurnal arrival curve, requests/second.
    pub peak_rps: f64,
    /// Diurnal period (a simulated "day").
    pub period_secs: u64,
    /// Measurement horizon — a whole number of diurnal cycles.
    pub horizon_secs: u64,
}

/// The full experiment: two simulated days at a 24 req/s mean against a
/// 2M-user population. Expected yield: ~4.1M requests, ~1.75M distinct
/// principals (2M × (1 − e^(−n/p)) for n ≈ 4.1M draws), on the order of
/// 10⁸ kernel events.
pub const FULL: Scale = Scale {
    label: "full",
    population: 2_000_000,
    base_rps: 8.0,
    peak_rps: 40.0,
    period_secs: 86_400,
    horizon_secs: 2 * 86_400,
};

/// The same shape shrunk for CI: ~0.5% of the requests against 1% of
/// the population (~10⁶ kernel events), one full (compressed) cycle.
pub const CI: Scale = Scale {
    label: "ci",
    population: 20_000,
    base_rps: 8.0,
    peak_rps: 40.0,
    period_secs: 864,
    horizon_secs: 864,
};

/// One measured row.
pub struct MillionUserPoint {
    /// Which scale produced the row.
    pub label: &'static str,
    /// Principal population requests drew from.
    pub population: u64,
    /// Requests issued by the generator.
    pub issued: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a SOAP fault.
    pub faulted: u64,
    /// Distinct principals observed at the front door.
    pub distinct_principals: u64,
    /// Kernel events executed over the whole run (boot included).
    pub events: u64,
    /// Requests routed to their pinned replica.
    pub affinity_hits: u64,
    /// First-sight pins (base-policy picks).
    pub affinity_misses: u64,
    /// Mean request latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_latency_s: f64,
}

/// Wall-clock kernel throughput of one run — never part of the CSV.
pub struct HostThroughput {
    /// Kernel events per host second over the measured window.
    pub events_per_sec: f64,
    /// Host seconds the window took.
    pub wall_secs: f64,
}

/// Tracks which members of a `u{k}` population have been seen, as a flat
/// bitmap — 2M principals cost 250 KB, and observing one is two loads.
struct DistinctPrincipals {
    bits: RefCell<Vec<u64>>,
    count: Cell<u64>,
}

impl DistinctPrincipals {
    fn new(population: u64) -> DistinctPrincipals {
        DistinctPrincipals {
            bits: RefCell::new(vec![0u64; population.div_ceil(64) as usize]),
            count: Cell::new(0),
        }
    }

    fn observe(&self, principal: &str) {
        let Some(k) = principal.strip_prefix('u').and_then(|s| s.parse::<u64>().ok()) else {
            return;
        };
        let mut bits = self.bits.borrow_mut();
        let (word, bit) = ((k / 64) as usize, k % 64);
        if bits[word] & (1 << bit) == 0 {
            bits[word] |= 1 << bit;
            self.count.set(self.count.get() + 1);
        }
    }
}

fn fleet_spec() -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = REPLICAS;
    spec.dispatcher.policy = Policy::RoundRobin;
    spec.dispatcher.max_in_flight = 4096;
    spec.dispatcher.affinity = Some(AffinityConfig {
        capacity: AFFINITY_CAPACITY,
    });
    spec.base.config.cache_grid_sessions = true;
    spec.base.config.reuse_staged_files = true;
    spec
}

/// Run one scale: boot the fleet, publish one service, offer the scale's
/// diurnal population-keyed traffic, and drain. Returns the
/// virtual-time row plus the host-side throughput of the measured window.
pub fn run_point(scale: Scale) -> (MillionUserPoint, HostThroughput) {
    let mut sim = Sim::new(SEED);
    let fleet = Fleet::new(&mut sim, fleet_spec());
    sim.run(); // cold-start the replicas
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_millis(500))
            .producing(16.0 * KB),
        |_| {},
    );
    sim.run();

    let until = sim.now() + Duration::from_secs(scale.horizon_secs);
    let distinct = Rc::new(DistinctPrincipals::new(scale.population));
    let dispatcher = Rc::clone(fleet.dispatcher());
    let d2 = Rc::clone(&distinct);
    let sink: Rc<SubmitFn> = Rc::new(move |sim, req, done| {
        if let Request::Invoke {
            principal: Some(p), ..
        } = &req
        {
            d2.observe(p);
        }
        dispatcher.submit(sim, req, done)
    });
    let stats = start_open_loop(
        &mut sim,
        ArrivalProcess::Diurnal {
            base_rate: scale.base_rps,
            peak_rate: scale.peak_rps,
            period: Duration::from_secs(scale.period_secs),
        },
        Mix::invoke_population(&["app"], scale.population),
        sink,
        until,
    );

    let events_before = sim.events_executed();
    let t0 = std::time::Instant::now();
    sim.run(); // the measured window: the diurnal cycles plus drain
    let wall_secs = t0.elapsed().as_secs_f64();
    let events = sim.events_executed();

    let c = fleet.dispatcher().counters();
    assert_eq!(
        c.accepted,
        c.completed + c.faulted,
        "request conservation violated"
    );
    let point = MillionUserPoint {
        label: scale.label,
        population: scale.population,
        issued: stats.issued(),
        completed: stats.completed(),
        faulted: stats.faulted(),
        distinct_principals: distinct.count.get(),
        events,
        affinity_hits: c.affinity_hits,
        affinity_misses: c.affinity_misses,
        mean_latency_s: stats.latency_mean(),
        p95_latency_s: stats.latency_percentile(95.0),
    };
    let throughput = HostThroughput {
        events_per_sec: (events - events_before) as f64 / wall_secs.max(1e-9),
        wall_secs,
    };
    (point, throughput)
}

/// Render rows as the CSV committed under `tests/golden/` (CI row) and
/// written to `target/experiments/` by the binary. Virtual-time state
/// only — no wall-clock columns — so same-seed runs are byte-identical.
pub fn csv(points: &[MillionUserPoint]) -> String {
    let mut out = String::from(
        "scale,population,issued,completed,faulted,distinct_principals,events,affinity_hits,affinity_misses,mean_latency_s,p95_latency_s\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.4},{:.4}\n",
            p.label,
            p.population,
            p.issued,
            p.completed,
            p.faulted,
            p.distinct_principals,
            p.events,
            p.affinity_hits,
            p.affinity_misses,
            p.mean_latency_s,
            p.p95_latency_s
        ));
    }
    out
}
