//! The gray-failure experiment: tail latency under a pinned slow-replica
//! schedule, with the health-plane detector on vs off.
//!
//! A three-replica fleet serves steadily paced invocations (~15.5 s end
//! to end each through upload-fetch + grid execution) while a seeded
//! [`ChaosMonkey`] degrades one replica to 10× its service latency at a
//! pinned instant. The replica keeps answering, so crash detection never
//! fires — only the windowed health plane can see it:
//!
//! * detector **off** — round-robin keeps handing the victim a third of
//!   the traffic; its queue grows without bound and the fleet-wide p99
//!   is pinned to the degraded path for the rest of the run.
//! * detector **on** — the peer-relative detector sees the victim's
//!   windowed p99 sustain ≥ 3× the fleet median, probation-weights it in
//!   the dispatcher, and after continued strikes ejects it like a crash;
//!   the replacement-only autoscaler boots a fresh replica and the fleet
//!   p99 recovers toward the healthy baseline.
//!
//! Both rows attach the [`HealthPlane`] (it is measurement either way —
//! attachment is result-neutral); only the `on` row installs the
//! [`GrayFailureDetector`]. The golden test pins the CSV byte-for-byte
//! and asserts the detector row flags the victim within bounded virtual
//! time and lands a strictly better fleet p99 than the control row.
//!
//! Shared by the `grayfail` binary and the golden determinism test so
//! both always describe the same experiment.

use std::cell::Cell;
use std::rc::Rc;

use fleet::{
    Autoscaler, AutoscalerConfig, ChaosMonkey, DetectorAction, Fleet, FleetSpec,
    GrayFailureDetector, HealthConfig, HealthPlane, Policy, Request, StorageTopology,
};
use onserve::profile::ExecutionProfile;
use simkit::fault::FaultPlan;
use simkit::{Duration, Sim, SimTime, KB};

use crate::fleetscale::fleet_image;

/// Seed shared by both rows — the slow-strike victim and every arrival
/// must be identical so the detector is the only variable.
pub const SEED: u64 = 0x6772_6179;

/// Replicas booted before load starts.
pub const REPLICAS: usize = 3;

/// Deterministic arrival spacing, fleet-wide. One request per 6 s
/// against three replicas that each take ~15.5 s per request keeps the
/// healthy pair comfortably under capacity even while it carries the
/// probationer's share.
pub fn arrival_gap() -> Duration {
    Duration::from_secs(6)
}

/// Measurement window after the fleet is booted and provisioned.
pub fn horizon() -> Duration {
    Duration::from_secs(1200)
}

/// Offset of the pinned slow strike from the start of load.
pub fn degrade_offset() -> Duration {
    Duration::from_secs(120)
}

/// Latency multiplier the strike applies to the victim.
pub const SLOW_FACTOR: f64 = 10.0;

/// Windowing tuned to the appliance's real invoke latency: with the
/// victim at 10× (~155 s per answer) the lookback must still hold its
/// completions, or the detector would only ever see the healthy pack.
pub fn health_config() -> HealthConfig {
    HealthConfig {
        window: Duration::from_secs(30),
        ring: 16,
        lookback: Duration::from_secs(240),
        interval: Duration::from_secs(30),
        latency_factor: 3.0,
        min_samples: 2,
        probation_strikes: 2,
        eject_strikes: 6,
        ..HealthConfig::default()
    }
}

/// One measured row.
pub struct GrayfailPoint {
    /// Whether the gray-failure detector was installed.
    pub detector: bool,
    /// Requests issued by the pacer.
    pub issued: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a SOAP fault.
    pub faulted: u64,
    /// Probation events the detector raised.
    pub probations: u64,
    /// Ejections the detector escalated to.
    pub ejections: u64,
    /// Replacement replicas the autoscaler booted.
    pub replaced: u64,
    /// Seconds from the degrade to the first probation (-1 if never).
    pub first_probation_s: f64,
    /// Seconds from the degrade to the ejection (-1 if never).
    pub first_eject_s: f64,
    /// Fleet-wide windowed p99 over the final lookback, seconds.
    pub fleet_p99_s: f64,
    /// Prometheus text exposition captured at the end of the run.
    pub prom: String,
    /// Windowed time-series CSV captured at the end of the run.
    pub timeseries: String,
}

fn fleet_spec() -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = REPLICAS;
    spec.dispatcher.policy = Policy::RoundRobin;
    // the victim's backlog must queue, not shed: the control row pins
    // hundreds of requests behind the degraded replica
    spec.dispatcher.max_in_flight = 1024;
    spec
}

/// Fixed-interval pacer cycling three tenants, counting completions.
fn pace(sim: &mut Sim, fleet: &Rc<Fleet>, until: SimTime, n: u64, issued: Rc<Cell<u64>>, ok: Rc<Cell<u64>>, bad: Rc<Cell<u64>>) {
    if sim.now() > until {
        return;
    }
    const TENANTS: [&str; 3] = ["alice", "bob", "carol"];
    issued.set(issued.get() + 1);
    let (c, f) = (Rc::clone(&ok), Rc::clone(&bad));
    fleet.dispatcher().clone().submit(
        sim,
        Request::Invoke {
            service: "app".into(),
            args: Vec::new(),
            principal: Some(TENANTS[(n % 3) as usize].into()),
        },
        Box::new(move |_, res| {
            if res.is_ok() {
                c.set(c.get() + 1);
            } else {
                f.set(f.get() + 1);
            }
        }),
    );
    let fl = Rc::clone(fleet);
    sim.schedule(arrival_gap(), move |sim| {
        pace(sim, &fl, until, n + 1, issued, ok, bad)
    });
}

/// Run one row: boot, provision, attach the plane, unleash the slow
/// strike, offer paced load, read the plane at the end.
pub fn run_point(detector: bool) -> GrayfailPoint {
    let mut sim = Sim::new(SEED);
    let fleet = Fleet::new(&mut sim, fleet_spec());
    sim.run(); // cold-start all appliances
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_millis(200))
            .producing(16.0 * KB),
        |_| {},
    );
    sim.run();
    let plane = HealthPlane::new(health_config());
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();
    let until = t0 + horizon();
    // replacement-only autoscaler: thresholds parked so Replace is the
    // only reachable decision — capacity changes come from the detector
    let _scaler = Autoscaler::install(
        &mut sim,
        &fleet,
        AutoscalerConfig {
            interval: Duration::from_secs(15),
            cooldown: Duration::from_secs(60),
            scale_up_load: f64::INFINITY,
            scale_down_load: 0.0,
            min_replicas: REPLICAS,
            max_replicas: REPLICAS + 2,
            ..AutoscalerConfig::default()
        },
        until,
    );
    let monkey = ChaosMonkey::unleash(
        &mut sim,
        &fleet,
        &FaultPlan::new(SEED).slow_at(degrade_offset(), SLOW_FACTOR),
    );
    let sentry = detector.then(|| GrayFailureDetector::install(&mut sim, &fleet, &plane, until));
    let issued = Rc::new(Cell::new(0u64));
    let ok = Rc::new(Cell::new(0u64));
    let bad = Rc::new(Cell::new(0u64));
    pace(
        &mut sim,
        &fleet,
        until,
        0,
        Rc::clone(&issued),
        Rc::clone(&ok),
        Rc::clone(&bad),
    );
    sim.run_until(until);
    let end = sim.now();
    assert_eq!(monkey.slowed(), 1, "the pinned slow strike landed");
    let degrade_at = t0 + degrade_offset();
    let since = |at: Option<SimTime>| at.map_or(-1.0, |t| (t - degrade_at).as_secs_f64());
    let events = sentry.as_ref().map_or(Vec::new(), |s| s.events());
    let first = |action: DetectorAction| {
        events.iter().find(|e| e.action == action).map(|e| e.at)
    };
    GrayfailPoint {
        detector,
        issued: issued.get(),
        completed: ok.get(),
        faulted: bad.get(),
        probations: sentry.as_ref().map_or(0, |s| s.probations() as u64),
        ejections: sentry.as_ref().map_or(0, |s| s.ejections() as u64),
        replaced: fleet.booted_total() - REPLICAS as u64,
        first_probation_s: since(first(DetectorAction::Probation)),
        first_eject_s: since(first(DetectorAction::Ejected)),
        fleet_p99_s: plane.fleet_p99(end).unwrap_or(-1.0),
        prom: plane.prometheus_text(end),
        timeseries: plane.timeseries_csv(),
    }
}

/// Run both rows (detector on, detector off) in parallel.
pub fn sweep() -> Vec<GrayfailPoint> {
    crate::par_sweep(&[true, false], |_, &detector| run_point(detector))
}

/// Render the sweep as the CSV committed under `tests/golden/`.
pub fn csv(points: &[GrayfailPoint]) -> String {
    let mut out = String::from(
        "detector,issued,completed,faulted,probations,ejections,replaced,first_probation_s,first_eject_s,fleet_p99_s\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{:.1},{:.1},{:.4}\n",
            if p.detector { "on" } else { "off" },
            p.issued,
            p.completed,
            p.faulted,
            p.probations,
            p.ejections,
            p.replaced,
            p.first_probation_s,
            p.first_eject_s,
            p.fleet_p99_s,
        ));
    }
    out
}
