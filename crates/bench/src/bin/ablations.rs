//! Ablation suite for the design choices DESIGN.md flags (◆): each run
//! toggles exactly one decision against the paper's build and reports the
//! delta.
//!
//! 1. double-write vs direct storage (§VIII-D3's "may be improved");
//! 2. re-stage every invocation vs reuse staged files (§VIII-B's "an
//!    upload strategy that avoids frequent uploads of the same file may
//!    finally result in a better overall performance");
//! 3. per-invocation credential exchange vs cached sessions (the Figure 6
//!    traffic observation);
//! 4. tentative output-poll interval sweep (the workaround's cost knob);
//! 5. FCFS vs EASY backfill under background load (queue-wait term of the
//!    overhead claim).
//!
//! Run with: `cargo run -p onserve-bench --bin ablations`

use std::cell::Cell;
use std::rc::Rc;

use blobstore::WriteStrategy;
use gridsim::BackgroundLoad;
use gridsim::scheduler::SchedPolicy;
use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve::OnServeConfig;
use onserve_bench::{par_sweep, Runner, KB};
use simkit::report::TextTable;
use simkit::{Duration, Sim, SimTime, MB};

fn invoke_n(r: &mut Runner, service: &str, n: u32) -> f64 {
    let t0 = r.sim.now();
    let done = Rc::new(Cell::new(0u32));
    for _ in 0..n {
        let c = done.clone();
        r.d.invoke(&mut r.sim, service, &[], move |_, res| {
            res.expect("invoke");
            c.set(c.get() + 1);
        });
    }
    r.sim.run();
    assert_eq!(done.get(), n);
    (r.sim.now() - t0).as_secs_f64()
}

fn main() {
    // ---- 1. storage strategy --------------------------------------------
    println!("==== ablation 1: storage write strategy (10 x 5 MB uploads) ====\n");
    let mut t = TextTable::new(vec!["strategy", "makespan", "disk written"]);
    let strategies = [
        ("double-write (paper)", WriteStrategy::DoubleWrite),
        ("direct", WriteStrategy::Direct),
    ];
    for row in par_sweep(&strategies, |_, &(label, strategy)| {
        let spec = DeploymentSpec {
            config: OnServeConfig {
                write_strategy: strategy,
                ..OnServeConfig::default()
            },
            ..DeploymentSpec::default()
        };
        let mut r = Runner::new(700, &spec);
        let t0 = r.sim.now();
        let done = Rc::new(Cell::new(0u32));
        for i in 0..10 {
            let req = r.d.upload_request(
                &format!("a{i}.exe"),
                5 * 1024 * 1024,
                ExecutionProfile::quick(),
                &[],
            );
            let c = done.clone();
            r.d.portal.upload(&mut r.sim, req, move |_, res| {
                res.expect("publish");
                c.set(c.get() + 1);
            });
        }
        r.sim.run();
        vec![
            label.to_string(),
            format!("{:.1} s", (r.sim.now() - t0).as_secs_f64()),
            format!(
                "{:.0} MB",
                r.sim.recorder_ref().total("appliance.disk.write.bytes") / MB
            ),
        ]
    }) {
        t.row(row);
    }
    println!("{}", t.render());

    // ---- 2. staging reuse ------------------------------------------------
    println!("==== ablation 2: re-stage vs reuse (5 invocations of a 2 MB tool) ====\n");
    let mut t = TextTable::new(vec!["staging", "makespan", "bytes to grid"]);
    let staging_modes = [("re-upload every run (paper)", false), ("reuse staged file", true)];
    for row in par_sweep(&staging_modes, |_, &(label, reuse)| {
        let spec = DeploymentSpec {
            config: OnServeConfig {
                reuse_staged_files: reuse,
                broker: gridsim::BrokerPolicy::Fixed("ncsa".into()),
                ..OnServeConfig::default()
            },
            ..DeploymentSpec::default()
        };
        let mut r = Runner::new(701, &spec);
        r.publish(
            "tool.exe",
            2 * 1024 * 1024,
            ExecutionProfile::quick()
                .lasting(Duration::from_secs(30))
                .producing(4.0 * KB),
            &[],
        );
        let grid_in_before = r.sim.recorder_ref().total("ncsa.net.in.bytes");
        let mut makespan = 0.0;
        for _ in 0..5 {
            makespan += invoke_n(&mut r, "tool", 1);
        }
        let grid_in = r.sim.recorder_ref().total("ncsa.net.in.bytes") - grid_in_before;
        vec![
            label.to_string(),
            format!("{makespan:.0} s"),
            format!("{:.1} MB", grid_in / MB),
        ]
    }) {
        t.row(row);
    }
    println!("{}", t.render());

    // ---- 3. session caching ----------------------------------------------
    println!("==== ablation 3: credential exchange per invocation vs cached sessions ====\n");
    let mut t = TextTable::new(vec!["sessions", "10-run makespan", "MyProxy traffic"]);
    let session_modes = [("authenticate every run (paper)", false), ("cached session", true)];
    for row in par_sweep(&session_modes, |_, &(label, cache)| {
        let spec = DeploymentSpec {
            config: OnServeConfig {
                cache_grid_sessions: cache,
                ..OnServeConfig::default()
            },
            ..DeploymentSpec::default()
        };
        let mut r = Runner::new(702, &spec);
        r.publish(
            "s.exe",
            8 * 1024,
            ExecutionProfile::quick()
                .lasting(Duration::from_secs(15))
                .producing(2.0 * KB),
            &[],
        );
        // sequential runs: concurrent first-invocations would all miss the
        // cache at once
        let mut makespan = 0.0;
        for _ in 0..10 {
            makespan += invoke_n(&mut r, "s", 1);
        }
        let mp = r.sim.recorder_ref().total("mp.fwd.bytes")
            + r.sim.recorder_ref().total("mp.rev.bytes");
        vec![
            label.to_string(),
            format!("{makespan:.0} s"),
            format!("{:.0} KB", mp / KB),
        ]
    }) {
        t.row(row);
    }
    println!("{}", t.render());

    // ---- 4. poll interval -------------------------------------------------
    println!("==== ablation 4: tentative output-poll interval (60 s job, 64 KB output) ====\n");
    let mut t = TextTable::new(vec![
        "interval",
        "latency",
        "polls",
        "bytes re-fetched",
    ]);
    let intervals = [3u64, 9, 30, 90];
    for row in par_sweep(&intervals, |_, &secs| {
        let spec = DeploymentSpec {
            config: OnServeConfig {
                poll_interval: Duration::from_secs(secs),
                ..OnServeConfig::default()
            },
            ..DeploymentSpec::default()
        };
        let mut r = Runner::new(703, &spec);
        r.publish(
            "p.exe",
            8 * 1024,
            ExecutionProfile::quick()
                .lasting(Duration::from_secs(60))
                .producing(64.0 * KB),
            &[],
        );
        let polls_before = r.d.agent.polls_issued();
        let wan_before = {
            let rec = r.sim.recorder_ref();
            r.d.grid
                .sites()
                .iter()
                .map(|s| rec.total(&format!("wan.{}.down.bytes", s.name())))
                .sum::<f64>()
        };
        let latency = invoke_n(&mut r, "p", 1);
        let rec = r.sim.recorder_ref();
        let refetched: f64 = r
            .d
            .grid
            .sites()
            .iter()
            .map(|s| rec.total(&format!("wan.{}.down.bytes", s.name())))
            .sum::<f64>()
            - wan_before;
        vec![
            format!("{secs} s"),
            format!("{latency:.0} s"),
            format!("{}", r.d.agent.polls_issued() - polls_before),
            format!("{:.0} KB", refetched / KB),
        ]
    }) {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "short intervals cut completion latency but multiply the re-fetch\n\
         traffic (\"requests the application's output more often than\n\
         necessary which may reduce the network performance even more\").\n"
    );

    // ---- 5. batch policy under background load ----------------------------
    println!("==== ablation 5: FCFS vs EASY backfill under heavy background load ====\n");
    let mut t = TextTable::new(vec!["policy", "mean queue+run latency (8 x 1-core jobs)"]);
    let policies = [SchedPolicy::Fcfs, SchedPolicy::Backfill];
    for row in par_sweep(&policies, |_, &policy| {
        let mut sim = Sim::new(704);
        // a standalone site carrying the policy under test, kept busy by a
        // background stream, probed with onServe-shaped (small, short) jobs
        let standalone = gridsim::GridSite::new(
            gridsim::SiteSpec {
                policy,
                ..gridsim::SiteSpec::teragrid_like("abl", 4, 8)
            },
            "appliance",
            Rc::new(std::cell::RefCell::new(gridsim::CertAuthority::new("/CN=CA", 1))),
        );
        BackgroundLoad {
            mean_interarrival: Duration::from_secs(30),
            ..BackgroundLoad::moderate(SimTime::from_secs(4 * 3600))
        }
        .start(&mut sim, &standalone);
        sim.run_until(SimTime::from_secs(1800)); // warm the queue
        let mut latencies = Vec::new();
        for _ in 0..8 {
            let finished = Rc::new(Cell::new(-1.0));
            let f2 = finished.clone();
            let submit_at = sim.now();
            gridsim::ClusterScheduler::submit(
                standalone.scheduler(),
                &mut sim,
                gridsim::scheduler::SchedRequest {
                    cores: 1,
                    walltime_limit: Duration::from_secs(600),
                    actual_runtime: Duration::from_secs(120),
                },
                move |sim, _| f2.set(sim.now().as_secs_f64()),
            );
            let deadline = sim.now() + Duration::from_secs(3600);
            sim.run_until(deadline);
            if finished.get() > 0.0 {
                latencies.push(finished.get() - submit_at.as_secs_f64());
            }
        }
        let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        vec![format!("{policy:?}"), format!("{mean:.0} s")]
    }) {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "backfill slips the onServe jobs (small, short) into scheduling\n\
         holes, cutting the queue-wait term of the §VIII-B overhead claim."
    );
}
