//! Chaos tolerance — goodput under a pinned replica-crash schedule, with
//! front-door retry on vs off.
//!
//! Run with: `cargo run --release -p onserve-bench --bin chaos`

use onserve_bench::chaos::{self, OFFERED_RPS};
use simkit::report::TextTable;

fn main() {
    println!(
        "==== chaos: {} req/s offered for {:.0} s, crashes at {:?} s ====\n",
        OFFERED_RPS,
        chaos::horizon().as_secs_f64(),
        chaos::crash_offsets()
            .iter()
            .map(|d| d.as_secs_f64())
            .collect::<Vec<_>>()
    );
    let points = chaos::sweep();

    let mut t = TextTable::new(vec![
        "retry",
        "issued",
        "completed",
        "faulted",
        "shed",
        "retried",
        "lost",
        "replaced",
        "goodput (req/s)",
    ]);
    for p in &points {
        t.row(vec![
            (if p.retry { "on" } else { "off" }).to_string(),
            p.issued.to_string(),
            p.completed.to_string(),
            p.faulted.to_string(),
            p.shed.to_string(),
            p.retried.to_string(),
            p.lost.to_string(),
            p.replaced.to_string(),
            format!("{:.3}", p.goodput_rps),
        ]);
    }
    println!("{}", t.render());

    let on = points.iter().find(|p| p.retry).expect("retry-on row");
    let off = points.iter().find(|p| !p.retry).expect("retry-off row");
    println!(
        "retry recovers {:.1}x the goodput of fail-fast under the same crashes",
        on.goodput_rps / off.goodput_rps
    );

    let csv = chaos::csv(&points);
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("chaos.csv");
    std::fs::write(&path, csv).expect("write chaos.csv");
    println!("\n(CSV written to {})", path.display());
}
