//! Figure 8 — "Upload file and generate Web service: CPU utilization,
//! network and hard disk I/O (3 seconds interval)".
//!
//! The portal scenario on the 1000 Mbit/s LAN. The paper's observations to
//! reproduce:
//! * a tall network-input peak as the file arrives at LAN speed;
//! * very high CPU from request handling, service build and storage;
//! * **two** disk-write activity peaks — "the file is written two times.
//!   The problem is, that the file is first stored temporarily and then in
//!   the database."
//!
//! The paper samples at 3 s; the two write passes are sub-second apart on
//! modern sampling, so the main run uses a 200 ms interval to make both
//! passes visible (the 3 s view is also printed for fidelity).
//!
//! Run with: `cargo run -p onserve-bench --bin fig8`
//!
//! Pass `--trace fig8.trace.json` to dump the fine-sampled run's causal
//! span tree as Chrome trace-event JSON (the double-write shows up as
//! two `db.*_write` child spans under `db.store`).

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{curve_from, render_figure, trim_curves, Runner, KB};
use simkit::{Duration, SimTime, MB};

fn run(interval: Duration, title: &str, trace: Option<&std::path::Path>) -> (String, f64, usize) {
    let mut r = Runner::with_sampling(8, &DeploymentSpec::default(), interval);
    if trace.is_some() {
        r.sim.enable_telemetry();
    }
    let t0 = SimTime::ZERO;
    r.publish("upload5mb.exe", 5 * 1024 * 1024, ExecutionProfile::quick(), &[]);
    if let Some(path) = trace {
        onserve_bench::write_trace(&r.sim, path).expect("write trace");
    }
    let iv = interval.as_secs_f64();
    let rec = r.sim.recorder_ref();
    let mut curves = vec![
        curve_from(
            rec.series("appliance.cpu.busy"),
            t0,
            "CPU utilization",
            "%",
            100.0 / iv,
        ),
        curve_from(
            rec.series("appliance.net.in.bytes"),
            t0,
            "network in",
            "MB/s",
            1.0 / (iv * MB),
        ),
        curve_from(
            rec.series("appliance.disk.write.bytes"),
            t0,
            "hard disk write",
            "MB/s",
            1.0 / (iv * MB),
        ),
        curve_from(
            rec.series("appliance.disk.read.bytes"),
            t0,
            "hard disk read",
            "MB/s",
            1.0 / (iv * MB),
        ),
    ];
    trim_curves(&mut curves);
    let csv_name = format!("fig8-{}ms", interval.as_secs_f64() * 1000.0);
    if let Ok(path) = onserve_bench::save_curves(&csv_name, &curves) {
        eprintln!("(curves saved to {})", path.display());
    }
    let rendered = render_figure(
        title,
        "paper: tall network-in peak (1000 Mbit/s LAN); high CPU from\n\
         tomcat + service build; TWO disk write peaks (temp file, then DB)",
        &curves,
    );
    // count distinct disk-write passes
    let disk = rec.series("appliance.disk.write.bytes").expect("disk");
    let mut passes = 0;
    let mut in_pass = false;
    for &b in disk.buckets() {
        if b > 16.0 * KB {
            if !in_pass {
                passes += 1;
                in_pass = true;
            }
        } else {
            in_pass = false;
        }
    }
    (rendered, disk.total(), passes)
}

fn main() {
    let trace = onserve_bench::trace_arg();
    let (fine, disk_total, passes) = run(
        Duration::from_millis(200),
        "Figure 8 — upload + generate Web service (200 ms sampling)",
        trace.as_deref(),
    );
    println!("{fine}");
    println!("summary:");
    println!(
        "  total disk writes         {:.1} MB for a 5.0 MB upload (double write)",
        disk_total / MB
    );
    println!("  distinct write passes     {passes} (paper: 2 peaks)");

    let (coarse, _, _) = run(
        Duration::from_secs(3),
        "Same run at the paper's 3 s sampling (passes merge into one bucket)",
        None,
    );
    println!("{coarse}");
}
