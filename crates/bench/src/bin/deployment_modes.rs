//! Deployment-mode study for the §V claim: "The access layer can be
//! deployed locally by a user, or deployed in a shared remote location and
//! used by multiple users."
//!
//! Part 1 prices the *on-demand* path (§V step 1): image copy + VM boot +
//! service start before the first request can even be accepted, and how
//! that cold start amortizes over successive invocations vs an always-on
//! appliance.
//!
//! Part 2 compares a **shared** appliance (three tenants on one access
//! layer) against **local** per-user appliances (three deployments in one
//! simulation, distinct hosts/paths), measuring what appliance-side
//! contention costs. (Each local deployment fronts its own Grid instance;
//! the comparison isolates the *access layer*, which is what §V varies.)
//!
//! Run with: `cargo run -p onserve-bench --bin deployment_modes`

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use onserve_bench::KB;
use simkit::report::TextTable;
use simkit::{Duration, Link, Sim, SimTime, GBIT_PER_S};
use vappliance::{build_image, ApplianceRecipe};
use wsstack::SoapValue;

fn publish(sim: &mut Sim, d: &Deployment, name: &str) {
    let req = d.upload_request(
        name,
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(30))
            .producing(8.0 * KB),
        &[],
    );
    d.portal.upload(sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
}

fn invoke_blocking(sim: &mut Sim, d: &Deployment, name: &str) -> f64 {
    let t0 = sim.now();
    let at = Rc::new(Cell::new(-1.0));
    let a2 = at.clone();
    d.invoke(sim, name, &[], move |sim, r| {
        assert!(matches!(r, Ok(SoapValue::Binary { .. })));
        a2.set(sim.now().as_secs_f64());
    });
    sim.run();
    at.get() - t0.as_secs_f64()
}

fn main() {
    // ---- part 1: on-demand cold start --------------------------------
    println!("==== on-demand appliance vs always-on (§V step 1) ====\n");
    let mut sim = Sim::new(800);
    let builder = simkit::Host::new(&simkit::HostSpec::commodity("builder"));
    let repo = Link::new("repo", "mirror", "builder", GBIT_PER_S / 8.0, Duration::from_millis(10));
    let image: Rc<RefCell<Option<vappliance::ApplianceImage>>> = Rc::new(RefCell::new(None));
    let i2 = image.clone();
    build_image(
        &mut sim,
        &builder,
        &repo,
        &ApplianceRecipe::cyberaide_onserve(),
        move |_, img| {
            *i2.borrow_mut() = Some(img);
        },
    );
    sim.run();
    let image = image.borrow_mut().take().expect("image");
    let build_done = sim.now();

    let image_link = Link::new("imgstore", "store", "vmm", GBIT_PER_S, Duration::from_millis(2));
    let ready: Rc<RefCell<Option<Deployment>>> = Rc::new(RefCell::new(None));
    let r2 = ready.clone();
    Deployment::build_on_demand(
        &mut sim,
        DeploymentSpec::default(),
        &image,
        &image_link,
        move |_, d| {
            *r2.borrow_mut() = Some(d);
        },
    );
    sim.run();
    let cold_start = (sim.now() - build_done).as_secs_f64();
    let d = ready.borrow_mut().take().expect("deployment ready");
    publish(&mut sim, &d, "tool.exe");
    let mut first = None;
    let mut total = 0.0;
    for i in 0..10 {
        let l = invoke_blocking(&mut sim, &d, "tool");
        if i == 0 {
            first = Some(l);
        }
        total += l;
    }
    let mut t = TextTable::new(vec!["metric", "on-demand", "always-on"]);
    t.row(vec![
        "appliance ready after".to_string(),
        format!("{cold_start:.0} s (copy+boot+services)"),
        "0 s".to_string(),
    ]);
    t.row(vec![
        "first result".to_string(),
        format!("{:.0} s + cold start", first.unwrap()),
        format!("{:.0} s", first.unwrap()),
    ]);
    t.row(vec![
        "cold start amortized over 10 runs".to_string(),
        format!("{:.0}%", 100.0 * cold_start / (cold_start + total)),
        "0%".to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "the appliance pays for itself quickly: one image boot (~1 min)\n\
         against every subsequent invocation being a single SOAP call.\n"
    );

    // ---- part 2: shared vs local appliances ---------------------------
    println!("==== shared appliance vs per-user appliances (§V) ====\n");
    let tenants = 3;
    let runs_per_tenant = 4;

    // shared: one deployment, one appliance host
    let mut sim = Sim::new(801);
    let shared = Deployment::build(&mut sim, &DeploymentSpec::default());
    for u in 0..tenants {
        publish(&mut sim, &shared, &format!("tool{u}.exe"));
    }
    let t0 = sim.now();
    let done = Rc::new(Cell::new(0u32));
    let lat_sum = Rc::new(Cell::new(0.0));
    for u in 0..tenants {
        for _ in 0..runs_per_tenant {
            let c = done.clone();
            let ls = lat_sum.clone();
            let started = sim.now();
            shared.invoke(&mut sim, &format!("tool{u}"), &[], move |sim, r| {
                r.expect("invoke");
                c.set(c.get() + 1);
                ls.set(ls.get() + (sim.now() - started).as_secs_f64());
            });
        }
    }
    sim.run();
    assert_eq!(done.get(), (tenants * runs_per_tenant) as u32);
    let shared_makespan = (sim.now() - t0).as_secs_f64();
    let shared_mean = lat_sum.get() / done.get() as f64;
    let shared_cpu = sim.recorder_ref().total("appliance.cpu.busy");

    // local: three deployments (distinct hosts/paths) in one simulation
    let mut sim = Sim::new(801);
    let mut locals = Vec::new();
    for u in 0..tenants {
        let spec = DeploymentSpec {
            appliance_name: format!("app-u{u}"),
            client_name: format!("client-u{u}"),
            lan_name: format!("lan-u{u}"),
            myproxy_name: format!("myproxy-u{u}"),
            myproxy_path_name: format!("mp-u{u}"),
            ..DeploymentSpec::default()
        };
        let d = Deployment::build(&mut sim, &spec);
        publish(&mut sim, &d, &format!("tool{u}.exe"));
        locals.push(d);
    }
    let t0 = sim.now();
    let done = Rc::new(Cell::new(0u32));
    let lat_sum = Rc::new(Cell::new(0.0));
    for (u, d) in locals.iter().enumerate() {
        for _ in 0..runs_per_tenant {
            let c = done.clone();
            let ls = lat_sum.clone();
            let started = sim.now();
            d.invoke(&mut sim, &format!("tool{u}"), &[], move |sim, r| {
                r.expect("invoke");
                c.set(c.get() + 1);
                ls.set(ls.get() + (sim.now() - started).as_secs_f64());
            });
        }
    }
    sim.run();
    assert_eq!(done.get(), (tenants * runs_per_tenant) as u32);
    let local_makespan = (sim.now() - t0).as_secs_f64();
    let local_mean = lat_sum.get() / done.get() as f64;
    let local_cpu: f64 = (0..tenants)
        .map(|u| sim.recorder_ref().total(&format!("app-u{u}.cpu.busy")))
        .sum();

    let mut t = TextTable::new(vec!["mode", "makespan", "mean latency", "appliance cpu-s"]);
    t.row(vec![
        format!("shared (1 appliance, {tenants} tenants)"),
        format!("{shared_makespan:.0} s"),
        format!("{shared_mean:.0} s"),
        format!("{shared_cpu:.1}"),
    ]);
    t.row(vec![
        format!("local ({tenants} appliances)"),
        format!("{local_makespan:.0} s"),
        format!("{local_mean:.0} s"),
        format!("{local_cpu:.1}"),
    ]);
    println!("{}", t.render());
    println!(
        "at this scale the shared access layer adds little: appliance-side\n\
         work is light (the paper's §VIII-D1 point), so sharing mostly costs\n\
         nothing until disk or LAN saturate — which the scalability bench\n\
         probes directly."
    );
    let _ = SimTime::ZERO;
}
