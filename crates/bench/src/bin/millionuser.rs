//! Million-principal fleet days: two diurnal cycles of open-loop traffic
//! whose requests draw their principal from a 2M-user population, driven
//! through the timer-wheel kernel at ~10⁸ events.
//!
//! Run with: `cargo run --release -p onserve-bench --bin millionuser`
//!
//! `--ci` runs the ~100×-shrunk CI scale (~10⁶ events) instead — same
//! shape, same seed discipline, byte-identical CSV per run; this is the
//! variant `scripts/ci.sh` double-runs and compares.
//!
//! The binary asserts a wall-clock kernel-throughput floor (override with
//! `MILLIONUSER_MIN_EPS=<events/sec>`; set it to 0 on a machine too slow
//! or too noisy to judge) and, at full scale, the experiment's two
//! structural claims: ≥ 1M distinct principals and ≥ 5×10⁷ kernel events.

use onserve_bench::millionuser::{self, Scale, CI, FULL};

/// Default wall-clock floor, kernel events per host second. Deliberately
/// conservative: a release build sustains ~10⁵ fleet-tier events/sec on
/// a single commodity core (each event drags the full SOAP/grid stack
/// with it, cf. the ~171 µs/request fig6 baseline); the floor only
/// catches the kernel falling off an algorithmic cliff, not
/// machine-to-machine variance.
const DEFAULT_MIN_EPS: f64 = 30_000.0;

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    let scale: Scale = if ci { CI } else { FULL };
    println!(
        "==== millionuser [{}]: population {}, diurnal {}→{} req/s over {} replicas, {} s horizon ====\n",
        scale.label,
        scale.population,
        scale.base_rps,
        scale.peak_rps,
        millionuser::REPLICAS,
        scale.horizon_secs,
    );

    let (point, host) = millionuser::run_point(scale);

    println!(
        "issued {} (completed {}, faulted {}) from {} distinct principals",
        point.issued, point.completed, point.faulted, point.distinct_principals
    );
    println!(
        "affinity: {} sticky hits, {} pins (pin table capacity {})",
        point.affinity_hits,
        point.affinity_misses,
        millionuser::AFFINITY_CAPACITY
    );
    println!(
        "latency: mean {:.3} s, p95 {:.3} s",
        point.mean_latency_s, point.p95_latency_s
    );
    println!(
        "kernel: {} events in {:.1} s wall — {:.2}M events/sec",
        point.events,
        host.wall_secs,
        host.events_per_sec / 1e6
    );

    let min_eps = std::env::var("MILLIONUSER_MIN_EPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_MIN_EPS);
    assert!(
        host.events_per_sec >= min_eps,
        "kernel throughput floor violated: {:.0} events/sec < {:.0}",
        host.events_per_sec,
        min_eps
    );
    if !ci {
        assert!(
            point.distinct_principals >= 1_000_000,
            "full scale must exercise >= 1M distinct principals, saw {}",
            point.distinct_principals
        );
        assert!(
            point.events >= 50_000_000,
            "full scale must execute on the order of 10^8 events, saw {}",
            point.events
        );
    }

    let csv = millionuser::csv(&[point]);
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("millionuser.csv");
    std::fs::write(&path, csv).expect("write millionuser.csv");
    println!("\n(CSV written to {})", path.display());
}
