//! Fleet scaling — throughput and latency vs replica count under shared
//! vs replicated storage (the §VIII-D "deploy more appliances" remedy,
//! quantified).
//!
//! Run with: `cargo run --release -p onserve-bench --bin fleetscale`
//! Add `--trace fleet.json` to export a Chrome trace of one representative
//! point (4 replicas, replicated).

use onserve_bench::fleetscale::{self, OFFERED_RPS};
use onserve_bench::{trace_arg, write_trace};
use simkit::report::TextTable;

fn main() {
    println!(
        "==== fleet scaling: {} req/s offered for {:.0} s ====\n",
        OFFERED_RPS,
        fleetscale::horizon().as_secs_f64()
    );
    let points = fleetscale::sweep();

    let mut t = TextTable::new(vec![
        "replicas",
        "storage",
        "throughput (req/s)",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "shed",
        "issued",
    ]);
    for p in &points {
        t.row(vec![
            p.replicas.to_string(),
            p.topology.label().to_string(),
            format!("{:.2}", p.throughput_rps),
            format!("{:.1}", p.p50_s),
            format!("{:.1}", p.p95_s),
            format!("{:.1}", p.p99_s),
            p.shed.to_string(),
            p.issued.to_string(),
        ]);
    }
    println!("{}", t.render());

    let shared_span: Vec<f64> = points
        .iter()
        .filter(|p| p.topology.label() == "shared")
        .map(|p| p.throughput_rps)
        .collect();
    let repl_span: Vec<f64> = points
        .iter()
        .filter(|p| p.topology.label() == "replicated")
        .map(|p| p.throughput_rps)
        .collect();
    println!(
        "replicated 1→{} replicas: {:.2} → {:.2} req/s ({:.1}x)",
        fleetscale::REPLICAS[fleetscale::REPLICAS.len() - 1],
        repl_span[0],
        repl_span[repl_span.len() - 1],
        repl_span[repl_span.len() - 1] / repl_span[0]
    );
    println!(
        "shared     1→{} replicas: {:.2} → {:.2} req/s ({:.1}x) — the NAS is the fleet",
        fleetscale::REPLICAS[fleetscale::REPLICAS.len() - 1],
        shared_span[0],
        shared_span[shared_span.len() - 1],
        shared_span[shared_span.len() - 1] / shared_span[0]
    );

    let csv = fleetscale::csv(&points);
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("fleetscale.csv");
    std::fs::write(&path, csv).expect("write fleetscale.csv");
    println!("\n(CSV written to {})", path.display());

    if let Some(path) = trace_arg() {
        // re-run one representative point with telemetry on; the sweep
        // itself stays untraced so its numbers match the golden fixture
        eprintln!("\ntracing 4-replica replicated point...");
        let (sim, _fleet, _stats, _point) = fleetscale::run_point_instrumented(
            fleet::StorageTopology::Replicated,
            4,
            0xf1ee7 + 5,
            true,
        );
        write_trace(&sim, &path).expect("write trace");
    }
}
