//! Figure 7 — "Web service execution, larger file: network and hard disk
//! I/O (3 seconds interval)".
//!
//! The small executable of Figure 6 is replaced with a ~5 MB file. The
//! paper's observations to reproduce:
//! * a first disk peak when the file is written temporarily to disk;
//! * the network, not the disk, is the limiting factor;
//! * the upload to the Grid node takes ~60 seconds at a near-constant
//!   80–90 KB/s;
//! * the periodic output-polling disk writes continue underneath.
//!
//! Run with: `cargo run -p onserve-bench --bin fig7`
//!
//! Pass `--trace fig7.trace.json` to dump the run's causal span tree as
//! Chrome trace-event JSON (open in Perfetto).

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{curve_from, render_figure, trim_curves, Runner, KB};
use simkit::Duration;

fn main() {
    let trace = onserve_bench::trace_arg();
    let mut r = Runner::new(7, &DeploymentSpec::default());
    if trace.is_some() {
        r.sim.enable_telemetry();
    }
    r.publish(
        "large.exe",
        5 * 1024 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(45))
            .producing(32.0 * KB),
        &[],
    );
    let t0 = r.sim.now();
    let (res, done_at) = r.invoke_blocking("large", &[]);
    res.expect("invocation");

    let iv = r.sim.recorder_ref().interval().as_secs_f64();
    let rec = r.sim.recorder_ref();
    let mut curves = vec![
        curve_from(
            rec.series("appliance.net.out.bytes"),
            t0,
            "network out",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.net.in.bytes"),
            t0,
            "network in",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.write.bytes"),
            t0,
            "hard disk write",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.read.bytes"),
            t0,
            "hard disk read",
            "KB/s",
            1.0 / (iv * KB),
        ),
    ];
    trim_curves(&mut curves);
    if let Ok(path) = onserve_bench::save_curves("fig7", &curves) {
        eprintln!("(curves saved to {})", path.display());
    }
    println!(
        "{}",
        render_figure(
            "Figure 7 — Web service execution, ~5 MB file (3 s sampling)",
            "paper: first blue peak = temporary disk write; then ~60 s\n\
             upload at a constant 80-90 KB/s; network (not disk) limits",
            &curves
        )
    );

    // the staging plateau, measured from the egress series
    let egress = rec.series("appliance.net.out.bytes").expect("egress");
    let start = (t0.ticks() / egress.interval().ticks()) as usize;
    let plateau: Vec<f64> = egress.buckets()[start..]
        .iter()
        .copied()
        .filter(|&v| v > 100.0 * KB)
        .collect();
    let plateau_secs = plateau.len() as f64 * iv;
    let mean_rate = plateau.iter().sum::<f64>() / plateau.len().max(1) as f64 / iv / KB;
    let min_rate = plateau.iter().copied().fold(f64::MAX, f64::min) / iv / KB;
    let max_rate = plateau.iter().copied().fold(0.0, f64::max) / iv / KB;
    let disk_busy = rec.total("appliance.disk.write.busy") + rec.total("appliance.disk.read.busy");
    println!("summary:");
    println!(
        "  upload plateau            {plateau_secs:.0} s (paper: ~60 s)"
    );
    println!(
        "  transfer rate             mean {mean_rate:.0} KB/s, range {min_rate:.0}-{max_rate:.0} KB/s (paper: 80-90 KB/s)"
    );
    println!(
        "  invocation wall time      {:.0} s",
        (done_at - t0).as_secs_f64()
    );
    println!(
        "  disk busy                 {disk_busy:.2} s — \"the hard disk is not the limiting factor\""
    );

    if let Some(path) = trace {
        onserve_bench::write_trace(&r.sim, &path).expect("write trace");
    }
}
