//! Geo-distributed fleet — multi-site placement, latency-aware routing,
//! and federation under a pinned mid-run site outage.
//!
//! Run with: `cargo run --release -p onserve-bench --bin geo`

use onserve_bench::geo;
use simkit::report::TextTable;

fn main() {
    println!(
        "==== geo: {} sites, {} replicas, one request per {:.0} s for {:.0} s; outage +{:.0} s for {:.0} s ====\n",
        geo::sites().len(),
        geo::REPLICAS,
        geo::arrival_gap().as_secs_f64(),
        geo::horizon().as_secs_f64(),
        geo::outage_offset().as_secs_f64(),
        geo::outage_duration().as_secs_f64(),
    );
    let points = geo::sweep();

    let mut t = TextTable::new(vec![
        "mode",
        "issued",
        "completed",
        "faulted",
        "forwarded",
        "pulled",
        "blackholed",
        "wan hops",
        "link drops",
        "mean (ms)",
        "p99 (ms)",
    ]);
    for p in &points {
        t.row(vec![
            p.mode.label().to_string(),
            p.issued.to_string(),
            p.completed.to_string(),
            p.faulted.to_string(),
            p.forwarded.to_string(),
            p.results_pulled.to_string(),
            p.blackholed.to_string(),
            p.wan_hops.to_string(),
            p.link_drops.to_string(),
            format!("{:.1}", p.mean_ms),
            format!("{:.1}", p.p99_ms),
        ]);
    }
    println!("{}", t.render());

    let row = |m: geo::GeoMode| points.iter().find(|p| p.mode == m).expect("row");
    let (rr, near) = (row(geo::GeoMode::RoundRobin), row(geo::GeoMode::Nearest));
    let (obl, fed) = (row(geo::GeoMode::Oblivious), row(geo::GeoMode::Federated));
    println!(
        "nearest-site routing cuts mean latency {:.0} ms -> {:.0} ms; federation completes {} of {} where the oblivious control loses {} to timeouts",
        rr.mean_ms, near.mean_ms, fed.completed, fed.issued, obl.faulted,
    );

    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("geo.csv");
    std::fs::write(&path, geo::csv(&points)).expect("write geo.csv");
    let prom = dir.join("geo.prom");
    std::fs::write(&prom, &near.prom).expect("write geo.prom");
    println!(
        "\n(CSV written to {}; site-labelled exposition snapshot to {})",
        path.display(),
        prom.display()
    );
}
