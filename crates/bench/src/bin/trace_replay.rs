//! Trace-driven scheduler study: replay a Standard Workload Format trace
//! (synthesized with the classic grid-workload shapes) through both batch
//! policies, the ablation behind the paper's queue-wait term.
//!
//! The trace round-trips through real SWF text first — the same path an
//! archived Parallel-Workloads-Archive file would take — and the run
//! reports per-policy completion statistics plus achieved utilization.
//!
//! Run with: `cargo run -p onserve-bench --bin trace_replay`

use gridsim::scheduler::{ClusterScheduler, SchedPolicy};
use gridsim::{JobOutcome, WorkloadTrace};
use simkit::report::TextTable;
use simkit::stats::summarize;
use simkit::{Rng, Sim};

fn main() {
    // synthesize, then round-trip through SWF text like an archive file
    let mut rng = Rng::new(2010);
    let synthetic = WorkloadTrace::synthesize(&mut rng, 400, 20.0, 16);
    let swf = synthetic.to_swf();
    let trace = WorkloadTrace::parse(&swf).expect("swf roundtrip");
    assert_eq!(trace, synthetic);
    println!(
        "trace: {} jobs, {:.0} core-hours, horizon {:.1} h (SWF text {} KB)\n",
        trace.jobs.len(),
        trace.core_seconds() / 3600.0,
        trace.jobs.last().map(|j| j.submit as f64).unwrap_or(0.0) / 3600.0,
        swf.len() / 1024,
    );

    let mut table = TextTable::new(vec![
        "policy",
        "completed",
        "killed",
        "makespan",
        "utilization",
        "p50 turnaround",
        "p95 turnaround",
    ]);
    for policy in [SchedPolicy::Fcfs, SchedPolicy::Backfill] {
        let mut sim = Sim::new(7);
        let sched = ClusterScheduler::new("m", 4, 8, policy);
        let total_cores = sched.borrow().total_cores() as f64;
        // track turnaround: completion time − submit time
        let log = trace.replay(&mut sim, &sched);
        sim.run();
        let makespan = sim.now().as_secs_f64();
        let completed = log
            .borrow()
            .iter()
            .filter(|&&(_, oc)| oc == JobOutcome::Completed)
            .count();
        let killed = log.borrow().len() - completed;
        // turnaround per job: log order is completion order; recompute from
        // the trace's submit times via job id
        let submit_of: std::collections::HashMap<u64, u64> =
            trace.jobs.iter().map(|j| (j.job_id, j.submit)).collect();
        // completion instants are not in the log; re-derive turnaround by a
        // second instrumented run
        let mut sim2 = Sim::new(7);
        let sched2 = ClusterScheduler::new("m2", 4, 8, policy);
        let turnarounds: std::rc::Rc<std::cell::RefCell<Vec<f64>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for j in &trace.jobs {
            let t = std::rc::Rc::clone(&turnarounds);
            let submit = *submit_of.get(&j.job_id).expect("known job") as f64;
            let sc = std::rc::Rc::clone(&sched2);
            let j = *j;
            sim2.schedule(
                simkit::Duration::from_secs(j.submit),
                move |sim| {
                    let t2 = std::rc::Rc::clone(&t);
                    ClusterScheduler::submit(
                        &sc,
                        sim,
                        gridsim::scheduler::SchedRequest {
                            cores: j.processors,
                            walltime_limit: simkit::Duration::from_secs(j.requested_time.max(1)),
                            actual_runtime: simkit::Duration::from_secs(j.run_time),
                        },
                        move |sim, _| {
                            t2.borrow_mut().push(sim.now().as_secs_f64() - submit);
                        },
                    );
                },
            );
        }
        sim2.run();
        let s = summarize(&turnarounds.borrow());
        let core_seconds = sim.recorder_ref().total("m.core_seconds");
        table.row(vec![
            format!("{policy:?}"),
            completed.to_string(),
            killed.to_string(),
            format!("{:.1} h", makespan / 3600.0),
            format!("{:.0}%", 100.0 * core_seconds / (total_cores * makespan)),
            format!("{:.0} s", s.p50),
            format!("{:.0} s", s.p95),
        ]);
    }
    println!("{}", table.render());
    println!(
        "backfill fills reservation holes with narrow/short jobs: same work,\n\
         shorter makespan, higher utilization, fatter-tail turnaround cut."
    );
}
