//! Experiment D-2 — the §VIII-D2 network-connection discussion.
//!
//! "A system that only possesses a slow network connection will naturally
//! treat requests much slower ... In a stress-test-scenario, when multiple
//! up- and downloads from and to the system have to be performed, a poor
//! network connection might become a bottleneck slowing down the treatment
//! of the requests."
//!
//! Sweep link bandwidth for both basic use cases: the portal
//! upload+generate scenario (client LAN) and the service-use scenario
//! (appliance→Grid WAN), single request and stressed (8 concurrent).
//!
//! Run with: `cargo run -p onserve-bench --bin netsweep`
//! Add `--trace d2.json` to export a Chrome trace of the stressed
//! paper-WAN point (the sweep itself stays untraced).

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{par_sweep, trace_arg, write_trace, Runner, KB};
use simkit::report::TextTable;
use simkit::{Duration, GBIT_PER_S, MB};

fn upload_scenario(lan_bw: f64, concurrent: u32, seed: u64) -> f64 {
    let spec = DeploymentSpec {
        lan_bandwidth: lan_bw,
        ..DeploymentSpec::default()
    };
    let mut r = Runner::new(seed, &spec);
    r.upload_burst("n", concurrent, 5 * 1024 * 1024, ExecutionProfile::quick())
}

fn service_use_scenario(wan_bw: f64, concurrent: u32, seed: u64, telemetry: bool) -> (f64, Runner) {
    let spec = DeploymentSpec {
        wan_bandwidth_override: Some(wan_bw),
        config: onserve::OnServeConfig {
            broker: gridsim::BrokerPolicy::Fixed("ncsa".into()),
            ..onserve::OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let mut r = Runner::new(seed, &spec);
    if telemetry {
        r.sim.enable_telemetry();
    }
    r.publish(
        "sweep.exe",
        2 * 1024 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(30))
            .producing(64.0 * KB),
        &[],
    );
    let makespan = r.invoke_burst("sweep", concurrent);
    (makespan, r)
}

struct Row {
    label: String,
    single: f64,
    stressed: f64,
}

fn main() {
    let lan_points: Vec<(&str, f64)> = vec![
        ("10 Mbit/s", 10.0e6 / 8.0),
        ("100 Mbit/s", 100.0e6 / 8.0),
        ("1000 Mbit/s (paper)", GBIT_PER_S),
    ];
    let wan_points: Vec<(&str, f64)> = vec![
        ("32 KB/s", 32.0 * KB),
        ("85 KB/s (paper)", 85.0 * KB),
        ("256 KB/s", 256.0 * KB),
        ("1 MB/s", 1.0 * MB),
        ("10 MB/s", 10.0 * MB),
    ];

    let lan_rows = par_sweep(&lan_points, |i, &(label, bw)| Row {
        label: label.to_owned(),
        single: upload_scenario(bw, 1, 300 + i as u64),
        stressed: upload_scenario(bw, 8, 310 + i as u64),
    });
    let wan_rows = par_sweep(&wan_points, |i, &(label, bw)| Row {
        label: label.to_owned(),
        single: service_use_scenario(bw, 1, 320 + i as u64, false).0,
        stressed: service_use_scenario(bw, 8, 330 + i as u64, false).0,
    });

    let render = |title: &str, rows: Vec<Row>| {
        println!("==== D-2 network sweep: {title} ====\n");
        let mut t = TextTable::new(vec!["link", "1 request", "8 concurrent", "slowdown @8"]);
        for r in &rows {
            t.row(vec![
                r.label.clone(),
                format!("{:.1} s", r.single),
                format!("{:.1} s", r.stressed),
                format!("{:.1}x", r.stressed / r.single),
            ]);
        }
        println!("{}", t.render());
    };
    render(
        "upload + generate Web service (5 MB, client LAN)",
        lan_rows,
    );
    render(
        "service use (2 MB staging + 30 s job, WAN to the site)",
        wan_rows,
    );
    println!(
        "paper claim: slow links dominate request treatment for BOTH basic\n\
         use cases, and concurrency amplifies it — latency should fall\n\
         steeply with bandwidth until another resource takes over."
    );

    if let Some(path) = trace_arg() {
        // re-run the stressed paper-WAN point with telemetry on; the sweep
        // itself stays untraced so its numbers are unperturbed
        eprintln!("\ntracing 8 concurrent service uses over the 85 KB/s WAN...");
        let (_, r) = service_use_scenario(85.0 * KB, 8, 331, true);
        write_trace(&r.sim, &path).expect("write trace");
    }
}
