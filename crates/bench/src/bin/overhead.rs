//! The §VIII-B overhead claim, quantified.
//!
//! "The additional overhead added by Cyberaide onServe should be quite
//! small compared to the runtime of a typical executable a Grid-Web
//! service is generated for." And the small-file regime: "the provided
//! solution is quite good in a scenario using a lot of relatively small
//! files ... K-GRAM permits to submit a large number of jobs quite
//! efficiently."
//!
//! Part 1 sweeps job runtime and prints SaaS-vs-raw-JSE latency; part 2
//! drives a burst of 200 small jobs through the SaaS layer and reports the
//! submission throughput.
//!
//! Run with: `cargo run -p onserve-bench --bin overhead`

use std::cell::Cell;
use std::rc::Rc;

use cyberaide::OutputPoller;
use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use onserve_bench::{par_sweep, Runner, KB};
use simkit::report::TextTable;
use simkit::{Duration, Sim};
use wsstack::SoapValue;

/// Raw JSE path: agent driven directly, no SaaS layer.
fn raw_jse_latency(runtime: Duration, exe_bytes: f64, out_bytes: f64, seed: u64) -> f64 {
    let mut sim = Sim::new(seed);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let t0 = sim.now();
    let done_at = Rc::new(Cell::new(0.0));
    let da = done_at.clone();
    let agent = Rc::clone(&d.agent);
    let grid = Rc::clone(&d.grid);
    agent
        .clone()
        .authenticate(&mut sim, "alice", "s3cret", move |sim, auth| {
            let session = auth.expect("auth");
            let site = grid
                .select(&gridsim::BrokerPolicy::MostFreeCores, 1, sim.now())
                .expect("site");
            let agent2 = Rc::clone(&agent);
            let site2 = Rc::clone(&site);
            agent.stage_file(sim, session, &site, "job.exe", exe_bytes, move |sim, st| {
                st.expect("stage");
                let jd = agent2
                    .generate_job_description("job.exe", &[], "job.out")
                    .walltime(Duration::from_secs_f64(runtime.as_secs_f64() * 4.0));
                let exec = gridsim::gram::ExecutionModel {
                    actual_runtime: runtime,
                    output_bytes: out_bytes,
                };
                let agent3 = Rc::clone(&agent2);
                let site3 = Rc::clone(&site2);
                agent2
                    .clone()
                    .submit_job(sim, session, &site3, &jd, exec, move |sim, sub| {
                        let handle = sub.expect("submit");
                        // 1 s polling in both paths so the comparison is not
                        // quantized away by the 9 s default interval
                        OutputPoller {
                            interval: Duration::from_secs(1),
                            timeout: Duration::from_secs(24 * 3600),
                        }
                        .start(
                            sim,
                            agent3,
                            session,
                            site2,
                            handle,
                            move |sim, polled| {
                                polled.expect("output");
                                da.set(sim.now().as_secs_f64());
                            },
                        );
                    });
            });
        });
    sim.run();
    done_at.get() - t0.as_secs_f64()
}

/// SaaS path: one invocation through the full stack (publish excluded).
fn saas_latency(runtime: Duration, exe_bytes: usize, out_bytes: f64, seed: u64) -> f64 {
    let spec = DeploymentSpec {
        config: onserve::OnServeConfig {
            poll_interval: Duration::from_secs(1),
            ..onserve::OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let mut r = Runner::new(seed, &spec);
    r.publish(
        "job.exe",
        exe_bytes,
        ExecutionProfile::quick()
            .lasting(runtime)
            .producing(out_bytes),
        &[],
    );
    let t0 = r.sim.now();
    let (res, at) = r.invoke_blocking("job", &[]);
    res.expect("invoke");
    (at - t0).as_secs_f64()
}

fn main() {
    println!("==== overhead sweep: SaaS vs raw JSE ====\n");
    let runtimes: Vec<u64> = vec![1, 10, 60, 300, 1800, 3600];
    let rows = par_sweep(&runtimes, |i, &rt| {
        let runtime = Duration::from_secs(rt);
        let raw = raw_jse_latency(runtime, 128.0 * KB, 32.0 * KB, 500 + i as u64);
        let saas = saas_latency(runtime, 128 * 1024, 32.0 * KB, 510 + i as u64);
        (rt, raw, saas)
    });
    let mut t = TextTable::new(vec![
        "job runtime",
        "raw JSE",
        "onServe SaaS",
        "middleware overhead",
        "overhead / runtime",
    ]);
    for &(rt, raw, saas) in &rows {
        t.row(vec![
            format!("{rt} s"),
            format!("{raw:.1} s"),
            format!("{saas:.1} s"),
            format!("{:+.3} s", saas - raw),
            format!("{:.3}%", 100.0 * (saas - raw) / rt as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper claim holds when \"overhead / runtime\" collapses for typical\n\
         (minutes+) executables.\n"
    );

    println!("==== many-small-jobs throughput (the K-GRAM regime) ====\n");
    let mut r = Runner::new(600, &DeploymentSpec::default());
    r.publish(
        "micro.exe",
        8 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(20))
            .producing(4.0 * KB),
        &[],
    );
    let n = 200;
    let t0 = r.sim.now();
    let done = Rc::new(Cell::new(0u32));
    for _ in 0..n {
        let c = done.clone();
        r.d.invoke(&mut r.sim, "micro", &[], move |_, res| {
            assert!(matches!(res, Ok(SoapValue::Binary { .. })));
            c.set(c.get() + 1);
        });
    }
    r.sim.run();
    assert_eq!(done.get(), n);
    let wall = (r.sim.now() - t0).as_secs_f64();
    println!("  {n} small jobs (8 KB exe, 20 s runtime) completed in {wall:.0} s");
    println!(
        "  sustained rate: {:.1} jobs/min across {} sites",
        n as f64 * 60.0 / wall,
        r.d.grid.sites().len()
    );
    println!(
        "  total tentative polls: {} ({:.1} per job)",
        r.d.agent.polls_issued(),
        r.d.agent.polls_issued() as f64 / n as f64
    );
}
