//! Zero-downtime rollouts — restart vs rolling vs canary (promote and
//! auto-rollback), one seed, one schedule.
//!
//! Run with: `cargo run --release -p onserve-bench --bin rollout`

use onserve_bench::rollout::{self, SLOW_FACTOR};
use simkit::report::TextTable;

fn main() {
    println!(
        "==== rollout: one request per {:.0} s for {:.0} s, roll at +{:.0} s, {}x lemon at +{:.0} s ====\n",
        rollout::arrival_gap().as_secs_f64(),
        rollout::horizon().as_secs_f64(),
        rollout::roll_offset().as_secs_f64(),
        SLOW_FACTOR,
        rollout::lemon_offset().as_secs_f64(),
    );
    let points = rollout::sweep();

    let mut t = TextTable::new(vec![
        "mode",
        "issued",
        "completed",
        "dropped",
        "failed",
        "replaced",
        "rollbacks",
        "outcome",
        "versions",
        "fleet p99 (s)",
    ]);
    for p in &points {
        t.row(vec![
            p.mode.label().to_string(),
            p.issued.to_string(),
            p.completed.to_string(),
            p.dropped.to_string(),
            p.failed.to_string(),
            p.replaced.to_string(),
            p.rollbacks.to_string(),
            p.outcome.to_string(),
            p.versions.clone(),
            format!("{:.3}", p.fleet_p99_s),
        ]);
    }
    println!("{}", t.render());

    let restart = points.iter().find(|p| p.mode.label() == "restart").expect("row");
    let rolling = points.iter().find(|p| p.mode.label() == "rolling").expect("row");
    println!(
        "restart drops {} of {} requests; rolling drops {} — same seed, same schedule",
        restart.dropped, restart.issued, rolling.dropped
    );

    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("rollout.csv");
    std::fs::write(&path, rollout::csv(&points)).expect("write rollout.csv");
    let prom = dir.join("rollout.prom");
    let promote = points
        .iter()
        .find(|p| p.mode.label() == "canary-promote")
        .expect("promote row");
    std::fs::write(&prom, &promote.prom).expect("write rollout.prom");
    println!(
        "\n(CSV written to {}; exposition snapshot to {})",
        path.display(),
        prom.display()
    );
}
