//! Figure 6 — "Web service execution: CPU utilization, network and hard
//! disk I/O (3 seconds interval)".
//!
//! A very small executable (some bytes) is invoked as a Web service and
//! executed on a Grid node. The paper's observations to reproduce:
//! * hard-disk utilization very low, little data sent to the Grid;
//! * a relatively large part of the traffic is the security credential
//!   request and its answer;
//! * CPU peaks while loading+decompressing the file from the database and
//!   again while the job is created and submitted;
//! * periodic hard-disk write peaks from the tentative output requests.
//!
//! Run with: `cargo run -p onserve-bench --bin fig6`
//!
//! Pass `--trace fig6.trace.json` to record the run's causal span tree
//! and dump it as Chrome trace-event JSON (open in Perfetto).

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{curve_from, render_figure, trim_curves, Runner, KB};
use simkit::Duration;
use wsstack::SoapValue;

fn main() {
    let trace = onserve_bench::trace_arg();
    let mut r = Runner::new(6, &DeploymentSpec::default());
    if trace.is_some() {
        r.sim.enable_telemetry();
    }
    // a very small file (some bytes); the job runs ~60 s and writes a
    // modest output that the poller keeps re-fetching
    r.publish(
        "small.exe",
        64,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(60))
            .producing(48.0 * KB),
        &[],
    );
    let t0 = r.sim.now();
    let (res, done_at) = r.invoke_blocking("small", &[]);
    let bytes = match res.expect("invocation") {
        SoapValue::Binary { bytes, .. } => bytes,
        other => panic!("unexpected {other:?}"),
    };

    let iv = r.sim.recorder_ref().interval().as_secs_f64();
    let rec = r.sim.recorder_ref();
    let mut curves = vec![
        curve_from(
            rec.series("appliance.cpu.busy"),
            t0,
            "CPU utilization",
            "%",
            100.0 / iv,
        ),
        curve_from(
            rec.series("appliance.net.out.bytes"),
            t0,
            "network out",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.net.in.bytes"),
            t0,
            "network in",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.write.bytes"),
            t0,
            "hard disk write",
            "KB/s",
            1.0 / (iv * KB),
        ),
        curve_from(
            rec.series("appliance.disk.read.bytes"),
            t0,
            "hard disk read",
            "KB/s",
            1.0 / (iv * KB),
        ),
    ];
    trim_curves(&mut curves);
    if let Ok(path) = onserve_bench::save_curves("fig6", &curves) {
        eprintln!("(curves saved to {})", path.display());
    }
    println!(
        "{}",
        render_figure(
            "Figure 6 — Web service execution, small file (3 s sampling)",
            "paper: low disk util; credential exchange dominates traffic;\n\
             CPU peaks at DB load/decompress and job submit; periodic disk\n\
             writes from tentative output polling",
            &curves
        )
    );

    // quantitative footer for EXPERIMENTS.md
    let wall = (done_at - t0).as_secs_f64();
    let cred = rec.total("mp.fwd.bytes") + rec.total("mp.rev.bytes");
    let wan: f64 = r
        .d
        .grid
        .sites()
        .iter()
        .map(|s| {
            rec.total(&format!("wan.{}.up.bytes", s.name()))
                + rec.total(&format!("wan.{}.down.bytes", s.name()))
        })
        .sum();
    let disk_busy = rec.total("appliance.disk.write.busy") + rec.total("appliance.disk.read.busy");
    println!("summary:");
    println!("  invocation wall time      {wall:.1} s (job runtime 60 s)");
    println!("  output delivered          {:.0} KB", bytes / KB);
    println!("  credential exchange       {:.1} KB", cred / KB);
    println!("  total grid-side traffic   {:.1} KB", wan / KB);
    println!(
        "  credential share of WAN   {:.0}%",
        100.0 * cred / (cred + wan)
    );
    println!("  disk busy                 {disk_busy:.2} s over {wall:.0} s (very low)");
    println!(
        "  tentative output polls    {}",
        r.d.agent.polls_issued()
    );

    if let Some(path) = trace {
        onserve_bench::write_trace(&r.sim, &path).expect("write trace");
    }
}
