//! Session affinity — credential exchanges and latency with sticky
//! routing on vs off, per-replica session cache enabled in both rows.
//!
//! Run with: `cargo run --release -p onserve-bench --bin affinity`

use onserve_bench::affinity::{self, OFFERED_RPS, REPLICAS, TENANTS};
use simkit::report::TextTable;

fn main() {
    println!(
        "==== affinity: {} tenants, {} req/s for {:.0} s over {} replicas ====\n",
        TENANTS,
        OFFERED_RPS,
        affinity::horizon().as_secs_f64(),
        REPLICAS,
    );
    let points = affinity::sweep();

    let mut t = TextTable::new(vec![
        "affinity",
        "issued",
        "completed",
        "faulted",
        "auths",
        "session hits",
        "sticky hits",
        "pins",
        "mean (s)",
        "p95 (s)",
    ]);
    for p in &points {
        t.row(vec![
            (if p.affinity { "on" } else { "off" }).to_string(),
            p.issued.to_string(),
            p.completed.to_string(),
            p.faulted.to_string(),
            p.auth_spans.to_string(),
            p.session_hits.to_string(),
            p.affinity_hits.to_string(),
            p.affinity_misses.to_string(),
            format!("{:.3}", p.mean_latency_s),
            format!("{:.3}", p.p95_latency_s),
        ]);
    }
    println!("{}", t.render());

    let on = points.iter().find(|p| p.affinity).expect("affinity-on row");
    let off = points.iter().find(|p| !p.affinity).expect("affinity-off row");
    println!(
        "sticky routing avoids {} credential exchanges ({} vs {}) and cuts mean latency {:.1}%",
        off.auth_spans - on.auth_spans,
        on.auth_spans,
        off.auth_spans,
        100.0 * (1.0 - on.mean_latency_s / off.mean_latency_s),
    );

    let csv = affinity::csv(&points);
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("affinity.csv");
    std::fs::write(&path, csv).expect("write affinity.csv");
    println!("\n(CSV written to {})", path.display());
}
