//! Experiment D-1 — the §VIII-D1 scalability discussion.
//!
//! "It is quite obvious that the solution's scalability is limited either
//! by the system's hard disk I/O-performance or its network connection's
//! performance. The solution doesn't need a lot of CPU time nor a lot of
//! memory, even with multiple simultaneously requests."
//!
//! Sweep the number of simultaneous portal uploads (LAN side) and the
//! number of simultaneous service invocations (WAN side), and report which
//! resource saturates. Points run in parallel on host threads (one
//! independent simulation each).
//!
//! Run with: `cargo run -p onserve-bench --bin scalability`
//! Add `--trace d1.json` to export a Chrome trace of the 8-invocation
//! point (the sweep itself stays untraced).

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{par_sweep, trace_arg, write_trace, Runner, KB};
use simkit::report::TextTable;
use simkit::{Duration, MB};

struct UploadPoint {
    n: u32,
    makespan: f64,
    cpu_busy: f64,
    disk_busy: f64,
    lan_busy: f64,
}

fn upload_point(n: u32) -> UploadPoint {
    let mut r = Runner::new(100 + n as u64, &DeploymentSpec::default());
    let makespan = r.upload_burst("u", n, 10 * 1024 * 1024, ExecutionProfile::quick());
    let rec = r.sim.recorder_ref();
    UploadPoint {
        n,
        makespan,
        cpu_busy: rec.total("appliance.cpu.busy"),
        disk_busy: rec.total("appliance.disk.write.busy") + rec.total("appliance.disk.read.busy"),
        lan_busy: rec.total("lan.fwd.busy"),
    }
}

struct InvokePoint {
    n: u32,
    makespan: f64,
    wan_busy_max: f64,
    disk_busy: f64,
    cpu_busy: f64,
}

fn invoke_point(n: u32, telemetry: bool) -> (InvokePoint, Runner) {
    let spec = DeploymentSpec {
        config: onserve::OnServeConfig {
            // pin one site so the WAN contention is visible
            broker: gridsim::BrokerPolicy::Fixed("tacc".into()),
            ..onserve::OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let mut r = Runner::new(200 + n as u64, &spec);
    if telemetry {
        r.sim.enable_telemetry();
    }
    r.publish(
        "tool.exe",
        2 * 1024 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(60))
            .producing(16.0 * KB),
        &[],
    );
    let makespan = r.invoke_burst("tool", n);
    let rec = r.sim.recorder_ref();
    let point = InvokePoint {
        n,
        makespan,
        wan_busy_max: rec.total("wan.tacc.up.busy"),
        disk_busy: rec.total("appliance.disk.write.busy") + rec.total("appliance.disk.read.busy"),
        cpu_busy: rec.total("appliance.cpu.busy"),
    };
    (point, r)
}

fn main() {
    let counts: Vec<u32> = vec![1, 2, 4, 8, 16, 32, 64];

    // run sweep points on parallel host threads — each owns its world
    let points = par_sweep(&counts, |_, &n| (upload_point(n), invoke_point(n, false).0));
    let (up, inv): (Vec<UploadPoint>, Vec<InvokePoint>) = points.into_iter().unzip();

    println!("==== D-1 scalability: simultaneous portal uploads (10 MB each, 1 Gbit/s LAN) ====\n");
    let mut t = TextTable::new(vec![
        "uploads", "makespan", "MB/s", "cpu busy", "disk busy", "lan busy", "bottleneck",
    ]);
    for p in &up {
        let total_mb = p.n as f64 * 10.0;
        let busiest = [
            (p.disk_busy, "disk"),
            (p.cpu_busy, "cpu"),
            (p.lan_busy, "network"),
        ]
        .into_iter()
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .unwrap()
        .1;
        t.row(vec![
            p.n.to_string(),
            format!("{:.1} s", p.makespan),
            format!("{:.0}", total_mb / p.makespan),
            format!("{:.1} s", p.cpu_busy),
            format!("{:.1} s", p.disk_busy),
            format!("{:.1} s", p.lan_busy),
            busiest.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper claim: \"limited either by the system's hard disk I/O-performance\n\
         or its network connection's performance. The solution doesn't need a\n\
         lot of CPU time\" — the bottleneck column should never say 'cpu'.\n"
    );

    println!("==== D-1 scalability: simultaneous service invocations (2 MB staging over one ~85 KB/s WAN) ====\n");
    let mut t = TextTable::new(vec![
        "invocations", "makespan", "wan busy", "disk busy", "cpu busy",
    ]);
    for p in &inv {
        t.row(vec![
            p.n.to_string(),
            format!("{:.0} s", p.makespan),
            format!("{:.0} s", p.wan_busy_max),
            format!("{:.1} s", p.disk_busy),
            format!("{:.1} s", p.cpu_busy),
        ]);
    }
    println!("{}", t.render());
    println!(
        "the WAN uplink saturates (busy ≈ makespan) while appliance CPU/disk\n\
         stay nearly idle: the network is the scaling wall on the Grid side."
    );
    let _ = MB;

    if let Some(path) = trace_arg() {
        // re-run one representative point with telemetry on; the sweep
        // itself stays untraced so its numbers are unperturbed
        eprintln!("\ntracing the 8-invocation point...");
        let (_, r) = invoke_point(8, true);
        write_trace(&r.sim, &path).expect("write trace");
    }
}
