//! Tracked kernel performance baseline.
//!
//! Measures the simkit hot paths (event queue, processor-sharing server,
//! metric recorder) plus the end-to-end Figure-6 pipeline, and writes the
//! results as machine-readable JSON to `BENCH_kernel.json` at the repo
//! root. CI and future optimisation PRs diff this file to catch
//! regressions.
//!
//! Run with: `cargo run --release -p onserve-bench --bin perfbaseline`
//!
//! With `--check`, the binary re-measures every scenario and compares
//! against the committed `BENCH_kernel.json` instead of overwriting it,
//! exiting non-zero if any scenario regressed by more than 25% — the
//! CI perf gate (`scripts/ci.sh`). The comparison is **min vs min**: on a
//! shared single-vCPU runner the sample mean swings ±50% run-to-run with
//! host preemption while the fastest sample — the preemption-free floor —
//! stays within a few percent, so the floor is what the gate trusts. A
//! scenario over tolerance is re-measured a few times before it is
//! flagged; real regressions from algorithmic changes survive retries and
//! are far larger than the margin anyway. When the runner itself is too
//! noisy to judge — median within-scenario sample spread over 1.35x —
//! over-tolerance scenarios are reported but the gate exits 0 (advisory):
//! a verdict from a machine that can't time a constant loop twice alike
//! is not a verdict.
//!
//! The criterion benches in `benches/kernel.rs` cover the same scenarios
//! interactively; this binary exists because bins cannot link
//! dev-dependencies, and because a flat JSON file is easier to track than
//! criterion's output directory.

use std::time::{Duration as WallDuration, Instant};

use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{Runner, KB};
use simkit::wheel::TimerWheel;
use simkit::{Duration, PsServer, Recorder, ServerConfig, Sim};

/// One measured scenario.
struct Entry {
    name: &'static str,
    /// Mean nanoseconds per operation.
    mean_ns: f64,
    /// Fastest sample, ns per operation.
    min_ns: f64,
    /// Operations per second implied by the mean.
    ops_per_sec: f64,
    /// Slowest/fastest sample ratio — the scenario's own noise gauge. A
    /// quiet machine measures these loops within a few percent; host
    /// preemption on a shared runner shows up as spread well over 1.3.
    spread: f64,
}

/// Calibrate a batch to ~2 ms, then time `samples` batches of `routine`,
/// whose return value is the number of operations it performed.
fn measure(name: &'static str, samples: usize, mut routine: impl FnMut() -> u64) -> Entry {
    let target = WallDuration::from_millis(2);
    let mut batch: u64 = 1;
    loop {
        let t0 = Instant::now();
        let mut ops = 0;
        for _ in 0..batch {
            ops += std::hint::black_box(routine());
        }
        let el = t0.elapsed();
        std::hint::black_box(ops);
        if el >= target || batch >= 1 << 24 {
            if el > WallDuration::ZERO && el < target {
                let scale = target.as_secs_f64() / el.as_secs_f64();
                batch = ((batch as f64 * scale).ceil() as u64).max(batch);
            }
            break;
        }
        batch *= 2;
    }
    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns: f64 = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        let mut ops: u64 = 0;
        for _ in 0..batch {
            ops += std::hint::black_box(routine());
        }
        let ns = t0.elapsed().as_nanos() as f64 / ops as f64;
        total_ns += ns;
        min_ns = min_ns.min(ns);
        max_ns = max_ns.max(ns);
    }
    let mean_ns = total_ns / samples as f64;
    Entry {
        name,
        mean_ns,
        min_ns,
        ops_per_sec: 1e9 / mean_ns,
        spread: max_ns / min_ns,
    }
}

/// Schedule-and-drain through the event queue; one op = one event.
fn bench_event_queue() -> Entry {
    const EVENTS: u64 = 1024;
    measure("engine.queue_push_pop", 20, || {
        let mut sim = Sim::new(1);
        for i in 0..EVENTS {
            sim.schedule(Duration::from_micros(i), |_| {});
        }
        sim.run();
        EVENTS
    })
}

/// The raw timer wheel, no boxed closures or kernel bookkeeping — the
/// structural cost `engine.queue_push_pop` pays on top of its event
/// dispatch. Same shape as that scenario: 1024 entries at distinct
/// ascending ticks, then a full drain. One op = one entry through.
fn bench_wheel_push_pop() -> Entry {
    const EVENTS: u64 = 1024;
    measure("engine.wheel_push_pop", 20, || {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        for i in 0..EVENTS {
            w.push(i, i, 0);
        }
        while w.pop_next(u64::MAX, |_| true).is_some() {}
        EVENTS
    })
}

/// Worst-case wheel traffic: entries spread 65536 ticks apart land on
/// levels 2–4 and must cascade down level by level before level 0 can
/// stage them. One op = one entry pushed, cascaded, and popped.
fn bench_wheel_cascade() -> Entry {
    const EVENTS: u64 = 512;
    measure("engine.wheel_cascade", 20, || {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        for i in 0..EVENTS {
            w.push(i * 65_536, i, 0);
        }
        while w.pop_next(u64::MAX, |_| true).is_some() {}
        EVENTS
    })
}

/// Same-tick batch execution through the full kernel: 64 events per tick
/// across 16 ticks, drained by `run`'s batched loop (one slot scan and
/// one clock update per tick instead of one queue pop per event). One op
/// = one executed event.
fn bench_same_tick_batch() -> Entry {
    const TICKS: u64 = 16;
    const PER_TICK: u64 = 64;
    measure("engine.same_tick_batch_64", 20, || {
        let mut sim = Sim::new(4);
        for t in 0..TICKS {
            for _ in 0..PER_TICK {
                sim.schedule(Duration::from_micros(t), |_| {});
            }
        }
        sim.run();
        TICKS * PER_TICK
    })
}

/// Metric-recording PS server under churn: submit `n` staggered flows,
/// run to completion. One op = one completed flow (each completion
/// triggers an advance + rate recompute + reschedule).
fn bench_ps_flows(name: &'static str, n: u64) -> Entry {
    measure(name, 20, move || {
        let mut sim = Sim::new(2);
        let srv = PsServer::new(ServerConfig::named("srv", 100.0));
        for i in 0..n {
            PsServer::submit(&srv, &mut sim, 1.0 + i as f64, |_| {});
        }
        sim.run();
        n
    })
}

/// Span accumulation into the bucketed recorder; one op = one add_span.
fn bench_recorder() -> Entry {
    const SPANS: u64 = 256;
    measure("metrics.add_span", 20, || {
        let mut rec = Recorder::new(Duration::from_secs(3));
        for i in 0..SPANS {
            let t0 = simkit::SimTime::from_secs_f64(i as f64 * 0.7);
            let t1 = simkit::SimTime::from_secs_f64(i as f64 * 0.7 + 0.9);
            rec.add_span("host.cpu.busy", t0, t1, 0.9);
        }
        SPANS
    })
}

/// The span API with telemetry off — the common case, which must cost no
/// more than a null check. One op = one begin/end pair.
fn bench_span_disabled() -> Entry {
    const PAIRS: u64 = 4096;
    measure("telemetry.span_disabled", 20, || {
        let mut sim = Sim::new(3);
        for _ in 0..PAIRS {
            let id = sim.span_begin("bench.span");
            sim.span_end(id);
        }
        std::hint::black_box(&mut sim);
        PAIRS
    })
}

/// The span API with telemetry on; one op = one recorded begin/end pair.
fn bench_span_enabled() -> Entry {
    const PAIRS: u64 = 4096;
    measure("telemetry.span_enabled", 20, || {
        let mut sim = Sim::new(3);
        sim.enable_telemetry();
        for _ in 0..PAIRS {
            let id = sim.span_begin("bench.span");
            sim.span_end(id);
        }
        std::hint::black_box(&mut sim);
        PAIRS
    })
}

/// The full Figure-6 invocation pipeline; one op = one invocation.
fn bench_fig6_pipeline() -> Entry {
    measure("pipeline.fig6", 10, || {
        let mut r = Runner::new(6, &DeploymentSpec::default());
        r.publish(
            "small.exe",
            64,
            ExecutionProfile::quick()
                .lasting(Duration::from_secs(60))
                .producing(48.0 * KB),
            &[],
        );
        let (res, _) = r.invoke_blocking("small", &[]);
        res.expect("invocation");
        1
    })
}

/// Maximum tolerated min-ns ratio vs the committed baseline in `--check`.
const CHECK_TOLERANCE: f64 = 1.25;

/// Re-measurements granted to a scenario over tolerance before `--check`
/// flags it — absorbs a preemption spike landing on every sample of one
/// scenario's first pass.
const CHECK_RETRIES: usize = 3;

/// Pause before each `--check` retry. In CI the gate runs right after the
/// build and test steps; deferred kernel work (writeback, cache eviction)
/// keeps stealing the single vCPU for a while, so retrying back-to-back
/// just re-samples the same noise window.
const CHECK_SETTLE: WallDuration = WallDuration::from_millis(300);

/// Median per-scenario sample spread above which the runner is too noisy
/// for the gate's verdict to mean anything: regressions are still printed
/// but the exit code is 0 (advisory). A quiet machine stays well under
/// this; a shared vCPU being preempted mid-sample blows past it.
const NOISE_SPREAD_LIMIT: f64 = 1.35;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let scenarios: Vec<fn() -> Entry> = vec![
        bench_event_queue,
        bench_wheel_push_pop,
        bench_wheel_cascade,
        bench_same_tick_batch,
        || bench_ps_flows("server.ps_flows_2", 2),
        || bench_ps_flows("server.ps_flows_16", 16),
        || bench_ps_flows("server.ps_flows_64", 64),
        bench_recorder,
        bench_span_disabled,
        bench_span_enabled,
        bench_fig6_pipeline,
    ];
    let entries: Vec<Entry> = scenarios.iter().map(|f| f()).collect();

    for e in &entries {
        println!(
            "{:<24} {:>12.1} ns/op  (min {:>10.1})  {:>14.0} ops/s",
            e.name, e.mean_ns, e.min_ns, e.ops_per_sec
        );
    }

    // repo root = two levels above this crate's manifest
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf();
    let path = root.join("BENCH_kernel.json");

    if check {
        let committed = std::fs::read_to_string(&path).expect("read BENCH_kernel.json");
        let doc = simkit::telemetry::parse_json(&committed).expect("parse BENCH_kernel.json");
        let mut regressions = 0;
        for (i, e) in entries.iter().enumerate() {
            let base = doc
                .get(e.name)
                .and_then(|s| s.get("min_ns"))
                .and_then(|v| v.as_num());
            match base {
                None => eprintln!("  {:<24} no committed baseline (new scenario)", e.name),
                Some(base) => {
                    let mut floor = e.min_ns;
                    let mut attempts = 0;
                    while floor > base * CHECK_TOLERANCE && attempts < CHECK_RETRIES {
                        std::thread::sleep(CHECK_SETTLE);
                        floor = floor.min(scenarios[i]().min_ns);
                        attempts += 1;
                    }
                    if floor > base * CHECK_TOLERANCE {
                        eprintln!(
                            "REGRESSION {:<24} floor {:.1} ns/op vs baseline {:.1} (+{:.0}%)",
                            e.name,
                            floor,
                            base,
                            100.0 * (floor / base - 1.0)
                        );
                        regressions += 1;
                    }
                }
            }
        }
        let mut spreads: Vec<f64> = entries.iter().map(|e| e.spread).collect();
        spreads.sort_by(|a, b| a.total_cmp(b));
        let noise = spreads[spreads.len() / 2];
        if regressions > 0 {
            if noise > NOISE_SPREAD_LIMIT {
                eprintln!(
                    "perf check ADVISORY: {regressions} scenario(s) over tolerance, but the \
                     runner is too noisy to judge (median sample spread {noise:.2}x > \
                     {NOISE_SPREAD_LIMIT}x) — not failing; re-run on a quiet machine"
                );
                return;
            }
            eprintln!("perf check FAILED: {regressions} scenario(s) regressed");
            std::process::exit(1);
        }
        eprintln!("(perf check OK against {})", path.display());
        return;
    }

    let mut json = String::from("{\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "  \"{}\": {{ \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"ops_per_sec\": {:.0} }}{}\n",
            e.name, e.mean_ns, e.min_ns, e.ops_per_sec, comma
        ));
    }
    json.push_str("}\n");
    std::fs::write(&path, json).expect("write BENCH_kernel.json");
    eprintln!("(baseline written to {})", path.display());
}
