//! Experiment D-3 — the §VIII-D3 hard-disk I/O discussion and the
//! double-write ablation.
//!
//! "When a file is loaded to the server, it is first stored into a
//! temporary location and then loaded from this location into the
//! database. Hence there are at least two write operations and one read
//! operation necessary just to store one file ... This is not optimal and
//! may lead to performance drops. When using a Web service the situation
//! is a bit different, as two reads and just one write operation are
//! necessary, and also mandatory."
//!
//! The bench stores a batch of 5 MB files under both write strategies and
//! then exercises the service-use read path, reporting disk bytes per
//! operation and the makespan delta the paper predicts.
//!
//! Run with: `cargo run -p onserve-bench --bin diskio`
//! Add `--trace d3.json` to export a Chrome trace of the double-write
//! store batch (the measured runs stay untraced).

use blobstore::WriteStrategy;
use onserve::deployment::DeploymentSpec;
use onserve::profile::ExecutionProfile;
use onserve_bench::{par_sweep, trace_arg, write_trace, Runner};
use simkit::report::TextTable;
use simkit::MB;

struct StoreRun {
    makespan: f64,
    disk_write: f64,
    disk_read: f64,
    disk_busy: f64,
}

fn store_batch(strategy: WriteStrategy, n: u32, seed: u64, telemetry: bool) -> (StoreRun, Runner) {
    let spec = DeploymentSpec {
        config: onserve::OnServeConfig {
            write_strategy: strategy,
            ..onserve::OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let mut r = Runner::new(seed, &spec);
    if telemetry {
        r.sim.enable_telemetry();
    }
    let makespan = r.upload_burst("f", n, 5 * 1024 * 1024, ExecutionProfile::quick());
    let rec = r.sim.recorder_ref();
    let run = StoreRun {
        makespan,
        disk_write: rec.total("appliance.disk.write.bytes"),
        disk_read: rec.total("appliance.disk.read.bytes"),
        disk_busy: rec.total("appliance.disk.write.busy") + rec.total("appliance.disk.read.busy"),
    };
    (run, r)
}

fn main() {
    let n = 20;
    println!("==== D-3 disk I/O: storing {n} x 5 MB uploads ====\n");
    let configs = [
        (WriteStrategy::DoubleWrite, 400u64),
        (WriteStrategy::Direct, 401u64),
    ];
    let mut runs = par_sweep(&configs, |_, &(strategy, seed)| {
        store_batch(strategy, n, seed, false).0
    });
    let direct = runs.pop().expect("direct run");
    let dw = runs.pop().expect("double-write run");
    let mut t = TextTable::new(vec![
        "strategy",
        "makespan",
        "disk written",
        "disk read",
        "disk busy",
        "writes per file",
    ]);
    for (label, run) in [("double-write (paper)", &dw), ("direct (ablation)", &direct)] {
        t.row(vec![
            label.to_string(),
            format!("{:.1} s", run.makespan),
            format!("{:.0} MB", run.disk_write / MB),
            format!("{:.0} MB", run.disk_read / MB),
            format!("{:.1} s", run.disk_busy),
            format!("{:.2}", run.disk_write / (n as f64 * 5.0 * MB)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "double-write stores the raw file once (temp) plus the compressed\n\
         blob; direct skips the temp pass: {:.0}% less disk traffic,\n\
         {:.0}% faster batch.\n",
        100.0 * (1.0 - direct.disk_write / dw.disk_write),
        100.0 * (1.0 - direct.makespan / dw.makespan),
    );

    // the read path: "two reads and just one write ... also mandatory"
    println!("==== D-3 disk I/O: the service-use read path (per §VIII-D3) ====\n");
    let mut r = Runner::new(402, &DeploymentSpec::default());
    r.publish(
        "used.exe",
        5 * 1024 * 1024,
        ExecutionProfile::quick().producing(1024.0),
        &[],
    );
    let w_before = r.sim.recorder_ref().total("appliance.disk.write.bytes");
    let r_before = r.sim.recorder_ref().total("appliance.disk.read.bytes");
    let (res, _) = r.invoke_blocking("used", &[]);
    res.expect("invoke");
    let w = r.sim.recorder_ref().total("appliance.disk.write.bytes") - w_before;
    let rd = r.sim.recorder_ref().total("appliance.disk.read.bytes") - r_before;
    let mut t = TextTable::new(vec!["operation", "bytes", "vs file size"]);
    t.row(vec![
        "reads (DB blob + temp file)".to_string(),
        format!("{:.1} MB", rd / MB),
        format!("{:.2}x", rd / (5.0 * MB)),
    ]);
    t.row(vec![
        "writes (temp file + output spool)".to_string(),
        format!("{:.1} MB", w / MB),
        format!("{:.2}x", w / (5.0 * MB)),
    ]);
    println!("{}", t.render());
    println!(
        "reads exceed writes on the use path (the paper's \"two reads and\n\
         just one write\"); this path is mandatory, not a flaw."
    );

    if let Some(path) = trace_arg() {
        // re-run the double-write batch with telemetry on; the measured
        // runs stay untraced so their numbers are unperturbed
        eprintln!("\ntracing the double-write store batch...");
        let (_, r) = store_batch(WriteStrategy::DoubleWrite, n, 400, true);
        write_trace(&r.sim, &path).expect("write trace");
    }
}
