//! Noisy neighbor — one flooding tenant vs 23 behaved tenants, with the
//! per-tenant QoS plane on vs off.
//!
//! Run with: `cargo run --release -p onserve-bench --bin noisyneighbor`

use onserve_bench::noisyneighbor::{self, Mode, BEHAVED_RPS, BEHAVED_TENANTS, FLOOD_RPS, REPLICAS};
use simkit::report::TextTable;

fn main() {
    println!(
        "==== noisyneighbor: {} behaved tenants @ {:.1} rps aggregate vs 1 flooder @ {:.1} rps, {} replicas, {:.0} s ====\n",
        BEHAVED_TENANTS,
        BEHAVED_RPS,
        FLOOD_RPS,
        REPLICAS,
        noisyneighbor::horizon().as_secs_f64(),
    );
    let points = noisyneighbor::sweep();

    let mut t = TextTable::new(vec![
        "mode",
        "behaved ok/shed",
        "behaved p99 (s)",
        "worst tenant p99 (s)",
        "flood ok/shed",
        "flood p99 (s)",
        "door queued",
        "door shed",
    ]);
    for p in &points {
        t.row(vec![
            p.mode.label().to_string(),
            format!("{}/{}", p.behaved_ok, p.behaved_shed),
            format!("{:.2}", p.behaved_p99_s),
            format!("{:.2}", p.worst_p99_s),
            format!("{}/{}", p.flood_ok, p.flood_shed),
            format!("{:.2}", p.flood_p99_s),
            p.door_queued.to_string(),
            p.door_shed.to_string(),
        ]);
    }
    println!("{}", t.render());

    let base = points.iter().find(|p| p.mode == Mode::Base).expect("base");
    let off = points.iter().find(|p| p.mode == Mode::QosOff).expect("off");
    let on = points.iter().find(|p| p.mode == Mode::QosOn).expect("on");
    println!(
        "QoS off lets the flooder inflate behaved p99 {:.1}x over baseline ({:.1} s -> {:.1} s);",
        off.behaved_p99_s / base.behaved_p99_s,
        base.behaved_p99_s,
        off.behaved_p99_s
    );
    println!(
        "QoS on holds it at {:.2}x baseline ({:.1} s) and pushes the backlog onto the flooder (p99 {:.0} s, {} shed)",
        on.behaved_p99_s / base.behaved_p99_s,
        on.behaved_p99_s,
        on.flood_p99_s,
        on.flood_shed
    );

    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("noisyneighbor.csv");
    std::fs::write(&path, noisyneighbor::csv(&points)).expect("write noisyneighbor.csv");
    let prom = dir.join("noisyneighbor.prom");
    std::fs::write(&prom, &on.prom).expect("write noisyneighbor.prom");
    println!(
        "\n(CSV written to {}; QoS-on exposition snapshot to {})",
        path.display(),
        prom.display()
    );
}
