//! Gray failure — fleet tail latency under a pinned slow-replica strike,
//! with the health-plane detector on vs off.
//!
//! Run with: `cargo run --release -p onserve-bench --bin grayfail`

use onserve_bench::grayfail::{self, SLOW_FACTOR};
use simkit::report::TextTable;

fn main() {
    println!(
        "==== grayfail: one request per {:.0} s for {:.0} s, {}x slow strike at +{:.0} s ====\n",
        grayfail::arrival_gap().as_secs_f64(),
        grayfail::horizon().as_secs_f64(),
        SLOW_FACTOR,
        grayfail::degrade_offset().as_secs_f64(),
    );
    let points = grayfail::sweep();

    let mut t = TextTable::new(vec![
        "detector",
        "issued",
        "completed",
        "faulted",
        "probations",
        "ejections",
        "replaced",
        "probation at (+s)",
        "ejected at (+s)",
        "fleet p99 (s)",
    ]);
    for p in &points {
        t.row(vec![
            (if p.detector { "on" } else { "off" }).to_string(),
            p.issued.to_string(),
            p.completed.to_string(),
            p.faulted.to_string(),
            p.probations.to_string(),
            p.ejections.to_string(),
            p.replaced.to_string(),
            format!("{:.0}", p.first_probation_s),
            format!("{:.0}", p.first_eject_s),
            format!("{:.3}", p.fleet_p99_s),
        ]);
    }
    println!("{}", t.render());

    let on = points.iter().find(|p| p.detector).expect("detector-on row");
    let off = points.iter().find(|p| !p.detector).expect("detector-off row");
    println!(
        "detector cuts the final-window fleet p99 {:.1}x (from {:.1} s to {:.1} s)",
        off.fleet_p99_s / on.fleet_p99_s,
        off.fleet_p99_s,
        on.fleet_p99_s
    );

    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join("grayfail.csv");
    std::fs::write(&path, grayfail::csv(&points)).expect("write grayfail.csv");
    let prom = dir.join("grayfail.prom");
    std::fs::write(&prom, &on.prom).expect("write grayfail.prom");
    let ts = dir.join("grayfail_timeseries.csv");
    std::fs::write(&ts, &on.timeseries).expect("write grayfail_timeseries.csv");
    println!(
        "\n(CSV written to {}; exposition snapshot to {}; time series to {})",
        path.display(),
        prom.display(),
        ts.display()
    );
}
