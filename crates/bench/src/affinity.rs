//! The session-affinity experiment: credential work and latency with
//! sticky routing on vs off.
//!
//! A four-replica fleet hosts one service per tenant, each published under
//! its own grid identity, with the per-replica session cache enabled. A
//! closed-loop population invokes the services carrying the owning tenant
//! as the request principal:
//!
//! * affinity **off** — round-robin scatters every tenant over all four
//!   replicas, so each replica ends up authenticating each tenant once:
//!   ~`tenants × replicas` MyProxy exchanges, and the tail of first-touch
//!   requests pays the credential latency.
//! * affinity **on** — each tenant is pinned to one replica on first
//!   sight, so the fleet authenticates each tenant exactly once and every
//!   later request rides that replica's cached session.
//!
//! The golden test pins the gap: fewer `agent.authenticate` spans and a
//! lower mean latency for the affinity row, same seed, byte-identical CSV.
//!
//! Shared by the `affinity` binary and the golden determinism test so both
//! always describe the same experiment.

use std::rc::Rc;

use fleet::{
    start_open_loop, AffinityConfig, ArrivalProcess, Fleet, FleetSpec, Mix, Policy,
    StorageTopology, SubmitFn,
};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, Sim, KB};

use crate::fleetscale::fleet_image;

/// Seed shared by both rows — arrivals and think times must be identical
/// so sticky routing is the only variable.
pub const SEED: u64 = 0xaff1;

/// Distinct grid identities, one service each.
pub const TENANTS: usize = 24;

/// Open-loop offered load, requests/second. Low enough that the replicas
/// rarely queue — the rows then differ by credential work, not contention.
pub const OFFERED_RPS: f64 = 0.6;

/// Replicas behind the dispatcher.
pub const REPLICAS: usize = 4;

/// Measurement window after boot and provisioning.
pub fn horizon() -> Duration {
    Duration::from_secs(600)
}

/// One measured row.
pub struct AffinityPoint {
    /// Whether sticky routing was enabled.
    pub affinity: bool,
    /// Requests issued by the generator.
    pub issued: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a SOAP fault.
    pub faulted: u64,
    /// `agent.authenticate` spans across the whole fleet — the credential
    /// exchanges the run actually paid for.
    pub auth_spans: u64,
    /// Cached-session reuses across all replicas.
    pub session_hits: u64,
    /// Requests routed to their pinned replica.
    pub affinity_hits: u64,
    /// First-sight pins (base-policy picks).
    pub affinity_misses: u64,
    /// Mean request latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile request latency, seconds.
    pub p95_latency_s: f64,
}

fn fleet_spec(affinity: bool) -> FleetSpec {
    let mut spec = FleetSpec::with_image(fleet_image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = REPLICAS;
    spec.dispatcher.policy = Policy::RoundRobin;
    spec.dispatcher.max_in_flight = 256;
    spec.dispatcher.affinity = affinity.then(AffinityConfig::default);
    // both rows cache sessions and staged executables — affinity decides
    // how often a request lands where the session and the staging already
    // are, instead of paying the first-touch cost on another replica
    spec.base.config.cache_grid_sessions = true;
    spec.base.config.reuse_staged_files = true;
    spec
}

/// Run one row: boot, publish one service per tenant, offer the same
/// Poisson arrival schedule with the owning tenant as each request's
/// principal.
pub fn run_point(affinity: bool) -> AffinityPoint {
    let mut sim = Sim::new(SEED);
    sim.enable_telemetry();
    let fleet = Fleet::new(&mut sim, fleet_spec(affinity));
    sim.run(); // cold-start the replicas
    let names: Vec<(String, String)> = (0..TENANTS)
        .map(|i| (format!("app{i}"), format!("user{i}")))
        .collect();
    for (app, user) in &names {
        fleet.publish_as(
            &mut sim,
            &format!("{app}.exe"),
            64 * 1024,
            ExecutionProfile::quick()
                .lasting(Duration::from_secs(1))
                .producing(16.0 * KB),
            Some((user, "pw")),
            |_| {},
        );
    }
    sim.run();
    let until = sim.now() + horizon();
    let targets: Vec<(&str, &str)> = names
        .iter()
        .map(|(app, user)| (app.as_str(), user.as_str()))
        .collect();
    let dispatcher = Rc::clone(fleet.dispatcher());
    let sink: Rc<SubmitFn> = Rc::new(move |sim, req, done| dispatcher.submit(sim, req, done));
    let stats = start_open_loop(
        &mut sim,
        ArrivalProcess::Poisson { rate: OFFERED_RPS },
        Mix::invoke_as(&targets),
        sink,
        until,
    );
    sim.run(); // drain every outstanding request
    let c = fleet.dispatcher().counters();
    assert_eq!(
        c.accepted,
        c.completed + c.faulted,
        "request conservation violated"
    );
    let t = sim.telemetry().expect("telemetry on");
    AffinityPoint {
        affinity,
        issued: stats.issued(),
        completed: stats.completed(),
        faulted: stats.faulted(),
        auth_spans: t.spans_named("agent.authenticate").len() as u64,
        session_hits: t.counter("onserve.session_cache_hit"),
        affinity_hits: c.affinity_hits,
        affinity_misses: c.affinity_misses,
        mean_latency_s: stats.latency_mean(),
        p95_latency_s: stats.latency_percentile(95.0),
    }
}

/// Run both rows (affinity on, affinity off) in parallel.
pub fn sweep() -> Vec<AffinityPoint> {
    crate::par_sweep(&[true, false], |_, &affinity| run_point(affinity))
}

/// Render the sweep as the CSV committed under `tests/golden/`.
pub fn csv(points: &[AffinityPoint]) -> String {
    let mut out = String::from(
        "affinity,issued,completed,faulted,auth_spans,session_hits,affinity_hits,affinity_misses,mean_latency_s,p95_latency_s\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.4},{:.4}\n",
            if p.affinity { "on" } else { "off" },
            p.issued,
            p.completed,
            p.faulted,
            p.auth_spans,
            p.session_hits,
            p.affinity_hits,
            p.affinity_misses,
            p.mean_latency_s,
            p.p95_latency_s
        ));
    }
    out
}
