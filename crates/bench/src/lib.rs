#![warn(missing_docs)]

//! Shared experiment drivers for the benchmark harness.
//!
//! Every figure-regeneration binary (`fig6`, `fig7`, `fig8`,
//! `scalability`, `netsweep`, `diskio`, `overhead`) and the criterion
//! benches build on the same blocking [`Runner`] around a
//! [`Deployment`], plus the figure-rendering helpers here. Binaries print
//! the same series the paper plots (ASCII charts + row tables) so
//! EXPERIMENTS.md can quote exact numbers.

pub mod affinity;
pub mod chaos;
pub mod fleetscale;
pub mod geo;
pub mod grayfail;
pub mod millionuser;
pub mod noisyneighbor;
pub mod rollout;

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use onserve::PublishedService;
use simkit::metrics::Series;
use simkit::report::{ascii_chart_rows, series_table};
use simkit::{Sim, SimTime};
use wsstack::{SoapFault, SoapValue};

/// A deployment plus its simulator, with blocking-style verbs.
pub struct Runner {
    /// The virtual world.
    pub sim: Sim,
    /// The system under test.
    pub d: Deployment,
}

impl Runner {
    /// Fresh system with the paper's 3-second sampling.
    pub fn new(seed: u64, spec: &DeploymentSpec) -> Runner {
        let mut sim = Sim::new(seed);
        let d = Deployment::build(&mut sim, spec);
        Runner { sim, d }
    }

    /// Fresh system with a custom sampling interval.
    pub fn with_sampling(seed: u64, spec: &DeploymentSpec, interval: simkit::Duration) -> Runner {
        let mut sim = Sim::with_sample_interval(seed, interval);
        let d = Deployment::build(&mut sim, spec);
        Runner { sim, d }
    }

    /// Upload + publish, draining the simulation.
    pub fn publish(
        &mut self,
        name: &str,
        len: usize,
        profile: ExecutionProfile,
        params: &[(&str, &str)],
    ) -> PublishedService {
        let req = self.d.upload_request(name, len, profile, params);
        let out: Rc<RefCell<Option<PublishedService>>> = Rc::new(RefCell::new(None));
        let o2 = Rc::clone(&out);
        self.d.portal.upload(&mut self.sim, req, move |_, r| {
            *o2.borrow_mut() = Some(r.expect("publish"));
        });
        self.sim.run();
        let svc = out.borrow_mut().take().expect("published");
        svc
    }

    /// Fire `n` concurrent portal uploads (`{prefix}{i}.exe`, `len` bytes
    /// each, all sharing `profile`), drain the simulation, and return the
    /// batch makespan in seconds. Panics if any upload fails or goes
    /// unanswered — sweep points measure saturation, not error paths.
    pub fn upload_burst(&mut self, prefix: &str, n: u32, len: usize, profile: ExecutionProfile) -> f64 {
        let t0 = self.sim.now();
        let done = Rc::new(Cell::new(0u32));
        for i in 0..n {
            let req = self
                .d
                .upload_request(&format!("{prefix}{i}.exe"), len, profile, &[]);
            let c = done.clone();
            self.d.portal.upload(&mut self.sim, req, move |_, res| {
                res.expect("publish");
                c.set(c.get() + 1);
            });
        }
        self.sim.run();
        assert_eq!(done.get(), n, "upload burst lost requests");
        (self.sim.now() - t0).as_secs_f64()
    }

    /// Fire `n` concurrent no-argument invocations of `service`, drain,
    /// and return the batch makespan in seconds. Panics on any fault.
    pub fn invoke_burst(&mut self, service: &str, n: u32) -> f64 {
        let t0 = self.sim.now();
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..n {
            let c = done.clone();
            self.d.invoke(&mut self.sim, service, &[], move |_, res| {
                res.expect("invoke");
                c.set(c.get() + 1);
            });
        }
        self.sim.run();
        assert_eq!(done.get(), n, "invoke burst lost requests");
        (self.sim.now() - t0).as_secs_f64()
    }

    /// Invoke and drain; returns `(result, completion_instant)`.
    pub fn invoke_blocking(
        &mut self,
        service: &str,
        args: &[(&str, SoapValue)],
    ) -> (Result<SoapValue, SoapFault>, SimTime) {
        let out: Rc<RefCell<Option<Result<SoapValue, SoapFault>>>> = Rc::new(RefCell::new(None));
        let at = Rc::new(Cell::new(SimTime::ZERO));
        let (o2, a2) = (Rc::clone(&out), Rc::clone(&at));
        self.d.invoke(&mut self.sim, service, args, move |sim, r| {
            *o2.borrow_mut() = Some(r);
            a2.set(sim.now());
        });
        self.sim.run();
        let r = out.borrow_mut().take().expect("responded");
        (r, at.get())
    }
}

/// One plotted curve: label, y-axis unit, `(t, value)` rows.
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// Unit of the y values after scaling.
    pub unit: String,
    /// `(t_seconds, value)` rows.
    pub rows: Vec<(f64, f64)>,
}

/// Extract a curve from a recorded series, rebased so `t0` is zero and
/// values scaled by `scale` (e.g. `1/(interval·KB)` turns bytes-per-bucket
/// into KB/s).
pub fn curve_from(
    series: Option<&Series>,
    t0: SimTime,
    label: &str,
    unit: &str,
    scale: f64,
) -> Curve {
    let rows = match series {
        None => Vec::new(),
        Some(s) => {
            let start = (t0.ticks() / s.interval().ticks()) as usize;
            let iv = s.interval().as_secs_f64();
            s.buckets()
                .iter()
                .enumerate()
                .skip(start)
                .map(|(i, &v)| ((i - start) as f64 * iv, v * scale))
                .collect()
        }
    };
    Curve {
        label: label.to_owned(),
        unit: unit.to_owned(),
        rows,
    }
}

/// Trim trailing all-zero tail from a set of curves (keeps charts tight).
pub fn trim_curves(curves: &mut [Curve]) {
    let last_active = curves
        .iter()
        .flat_map(|c| {
            c.rows
                .iter()
                .enumerate()
                .filter(|(_, &(_, v))| v.abs() > 1e-9)
                .map(|(i, _)| i)
                .max()
        })
        .max()
        .unwrap_or(0);
    for c in curves.iter_mut() {
        c.rows.truncate(last_active + 2);
    }
}

/// Render a figure: header, one chart per curve, then the row tables.
pub fn render_figure(title: &str, note: &str, curves: &[Curve]) -> String {
    let mut out = String::new();
    out.push_str(&format!("==== {title} ====\n"));
    if !note.is_empty() {
        out.push_str(note);
        out.push('\n');
    }
    out.push('\n');
    for c in curves {
        out.push_str(&ascii_chart_rows(
            &format!("{} [{}]", c.label, c.unit),
            &c.unit,
            &c.rows,
            8,
        ));
        out.push('\n');
    }
    for c in curves {
        out.push_str(&format!("--- {} ({}) ---\n", c.label, c.unit));
        out.push_str(&series_table(&c.unit, &c.rows));
        out.push('\n');
    }
    out
}

/// The paper's KB (1024 bytes).
pub const KB: f64 = 1024.0;

/// Parse `--trace <path>` (or `--trace=<path>`) from the process
/// arguments. Figure binaries use this to opt into telemetry: when the
/// flag is present they enable tracing on the simulator and dump a
/// Chrome trace-event file at exit.
pub fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(std::path::PathBuf::from(p));
        }
    }
    None
}

/// Write the run's telemetry as Chrome trace-event JSON to `path`
/// (loadable in Perfetto / `chrome://tracing`; timestamps are virtual
/// microseconds) and print the span-tree summary plus kernel profile to
/// stderr.
pub fn write_trace(sim: &Sim, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, sim.export_chrome_trace())?;
    eprintln!(
        "(trace written to {}; load it at https://ui.perfetto.dev)",
        path.display()
    );
    eprint!("{}", sim.span_summary());
    eprint!("{}", sim.profile());
    Ok(())
}

/// Run `f(index, &item)` for every sweep point on its own host thread and
/// return the results in input order.
///
/// Every sweep binary shares this shape: each point owns an independent
/// simulation (seeded from `index`), so the only cross-thread state is the
/// per-point output slot each thread writes — no locking, no post-sort.
pub fn par_sweep<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (i, (slot, item)) in out.iter_mut().zip(items).enumerate() {
            let f = &f;
            scope.spawn(move |_| *slot = Some(f(i, item)));
        }
    })
    .expect("sweep threads");
    out.into_iter()
        .map(|r| r.expect("sweep point completed"))
        .collect()
}

/// Write a figure's curves to `target/experiments/<name>.csv` so the data
/// behind every regenerated figure can be re-plotted with external tools.
/// Returns the path written.
pub fn save_curves(name: &str, curves: &[Curve]) -> std::io::Result<std::path::PathBuf> {
    let headers: Vec<String> = curves
        .iter()
        .map(|c| format!("{} ({})", c.label, c.unit))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<&[(f64, f64)]> = curves.iter().map(|c| c.rows.as_slice()).collect();
    let csv = simkit::report::curves_to_csv(&header_refs, &rows);
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, csv)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Duration;

    #[test]
    fn runner_round_trip() {
        let mut r = Runner::new(5, &DeploymentSpec::default());
        let svc = r.publish("t.exe", 4096, ExecutionProfile::quick().producing(64.0), &[]);
        assert_eq!(svc.service_name, "t");
        let (res, at) = r.invoke_blocking("t", &[]);
        assert!(matches!(res, Ok(SoapValue::Binary { .. })));
        assert!(at > SimTime::ZERO);
    }

    #[test]
    fn curve_rebases_time() {
        let mut sim = Sim::with_sample_interval(1, Duration::from_secs(1));
        sim.recorder().add_point("x", SimTime::from_secs(5), 10.0);
        let c = curve_from(
            sim.recorder_ref().series("x"),
            SimTime::from_secs(4),
            "x",
            "u",
            0.5,
        );
        assert_eq!(c.rows, vec![(0.0, 0.0), (1.0, 5.0)]);
    }

    #[test]
    fn trim_removes_tail() {
        let mut curves = vec![Curve {
            label: "a".into(),
            unit: "u".into(),
            rows: vec![(0.0, 1.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)],
        }];
        trim_curves(&mut curves);
        assert_eq!(curves[0].rows.len(), 2);
    }

    #[test]
    fn save_curves_writes_csv() {
        let curves = vec![Curve {
            label: "net".into(),
            unit: "KB/s".into(),
            rows: vec![(0.0, 1.0), (3.0, 2.5)],
        }];
        let path = save_curves("unit-test-figure", &curves).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.starts_with("t_seconds,net (KB/s)"));
        assert!(text.contains("3,2.5"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn par_sweep_preserves_input_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = par_sweep(&items, |i, &x| {
            // stagger completion so slow points cannot reorder results
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
            (i, x * 2)
        });
        assert_eq!(out.len(), 32);
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(doubled, items[i] * 2);
        }
    }

    #[test]
    fn par_sweep_empty_input() {
        let out: Vec<u32> = par_sweep(&[] as &[u8], |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn figure_renders_all_sections() {
        let curves = vec![Curve {
            label: "net".into(),
            unit: "KB/s".into(),
            rows: vec![(0.0, 1.0), (3.0, 2.0)],
        }];
        let s = render_figure("Fig X", "a note", &curves);
        assert!(s.contains("Fig X"));
        assert!(s.contains("a note"));
        assert!(s.contains("net"));
        assert!(s.contains("KB/s"));
    }
}
