//! The tentative output-polling loop.
//!
//! "One result of these workarounds is, that the actual status of the job
//! can't be retrieved and that the local client has to request the output
//! tentatively. Finally this may result in a service customer that
//! requests the application's output more often than necessary which may
//! reduce the network performance even more" (§VIII-B). This module is
//! that client loop: poll at a fixed interval until the job completes,
//! fails, or a deadline passes. Every poll re-fetches the entire current
//! output and spools it to the appliance disk — the periodic write peaks
//! in Figures 6 and 7.

use std::cell::RefCell;
use std::rc::Rc;

use gridsim::gram::{JobHandle, JobOutcome};
use gridsim::{GridError, GridSite};
use simkit::{Duration, Sim, SimTime};

use crate::agent::{CyberaideAgent, PollResult, SessionId};

/// Why the polling loop gave up.
#[derive(Clone, Debug, PartialEq)]
pub enum PollError {
    /// The job left the system without producing output.
    JobFailed(JobOutcome),
    /// The deadline passed with the job still incomplete.
    TimedOut {
        /// Polls issued before giving up.
        polls: u64,
    },
    /// The Grid rejected a poll outright.
    Grid(GridError),
}

impl std::fmt::Display for PollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PollError::JobFailed(o) => write!(f, "job failed: {o:?}"),
            PollError::TimedOut { polls } => write!(f, "timed out after {polls} polls"),
            PollError::Grid(e) => write!(f, "grid error: {e}"),
        }
    }
}

impl std::error::Error for PollError {}

/// What the loop measured (the paper's inefficiency, quantified).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PollStats {
    /// Polls issued.
    pub polls: u64,
    /// Total bytes fetched across all polls (with full re-fetches, this
    /// can far exceed the final output size).
    pub bytes_fetched: f64,
    /// Final output size.
    pub final_bytes: f64,
}

/// Configuration + entry point for the loop.
pub struct OutputPoller {
    /// Time between polls.
    pub interval: Duration,
    /// Give up after this much total waiting.
    pub timeout: Duration,
}

impl Default for OutputPoller {
    fn default() -> Self {
        OutputPoller {
            // the paper's graphs show "a relative constant interval"
            // between output writes; ~9 s matches the Figure 6 peak spacing
            interval: Duration::from_secs(9),
            timeout: Duration::from_secs(24 * 3600),
        }
    }
}

impl OutputPoller {
    /// Poll until the job completes (→ `Ok(stats)`) or fails/times out
    /// (→ `Err((error, stats))`).
    pub fn start<F>(
        &self,
        sim: &mut Sim,
        agent: Rc<CyberaideAgent>,
        session: SessionId,
        site: Rc<GridSite>,
        handle: JobHandle,
        done: F,
    ) where
        F: FnOnce(&mut Sim, Result<PollStats, (PollError, PollStats)>) + 'static,
    {
        let deadline = sim.now() + self.timeout;
        let span = sim.span_begin("poller.poll_loop");
        sim.span_attr(span, "site", site.name());
        sim.span_attr(span, "interval_secs", self.interval.as_secs_f64());
        let state = Rc::new(RefCell::new(LoopState {
            stats: PollStats::default(),
            done: Some(Box::new(done)),
            span,
        }));
        Self::tick(
            sim,
            agent,
            session,
            site,
            handle,
            self.interval,
            deadline,
            state,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn tick(
        sim: &mut Sim,
        agent: Rc<CyberaideAgent>,
        session: SessionId,
        site: Rc<GridSite>,
        handle: JobHandle,
        interval: Duration,
        deadline: SimTime,
        state: Rc<RefCell<LoopState>>,
    ) {
        let agent2 = Rc::clone(&agent);
        let site2 = Rc::clone(&site);
        let handle2 = handle.clone();
        // each poll nests under the loop span
        let loop_span = state.borrow().span;
        let prev = sim.set_span_parent(loop_span);
        agent.poll_output(sim, session, &site, &handle, move |sim, result| {
            let finish = |sim: &mut Sim,
                          state: &Rc<RefCell<LoopState>>,
                          outcome: Result<PollStats, (PollError, PollStats)>| {
                let taken = state.borrow_mut().done.take();
                if let Some(done) = taken {
                    let (span, stats) = {
                        let st = state.borrow();
                        (st.span, st.stats)
                    };
                    sim.span_attr(span, "polls", stats.polls);
                    sim.span_attr(span, "bytes_fetched", stats.bytes_fetched);
                    match &outcome {
                        Ok(_) => sim.span_end(span),
                        Err((e, _)) => sim.span_fail(span, &e.to_string()),
                    }
                    done(sim, outcome);
                }
            };
            {
                let mut st = state.borrow_mut();
                st.stats.polls += 1;
                match &result {
                    Ok(PollResult::Partial(b)) | Ok(PollResult::Complete(b)) => {
                        st.stats.bytes_fetched += b;
                    }
                    _ => {}
                }
            }
            match result {
                Err(e) => {
                    let stats = state.borrow().stats;
                    finish(sim, &state, Err((PollError::Grid(e), stats)));
                }
                Ok(PollResult::Complete(bytes)) => {
                    let mut stats = state.borrow().stats;
                    stats.final_bytes = bytes;
                    state.borrow_mut().stats = stats;
                    finish(sim, &state, Ok(stats));
                }
                Ok(PollResult::Failed(outcome)) => {
                    let stats = state.borrow().stats;
                    finish(sim, &state, Err((PollError::JobFailed(outcome), stats)));
                }
                Ok(PollResult::NotReady) | Ok(PollResult::Partial(_)) => {
                    if sim.now() + interval > deadline {
                        let stats = state.borrow().stats;
                        finish(
                            sim,
                            &state,
                            Err((PollError::TimedOut { polls: stats.polls }, stats)),
                        );
                        return;
                    }
                    sim.schedule_labeled(interval, "poller.tick", move |sim| {
                        Self::tick(
                            sim, agent2, session, site2, handle2, interval, deadline, state,
                        );
                    });
                }
            }
        });
        sim.set_span_parent(prev);
    }
}

type DoneFn = Box<dyn FnOnce(&mut Sim, Result<PollStats, (PollError, PollStats)>)>;

struct LoopState {
    stats: PollStats,
    done: Option<DoneFn>,
    /// The `poller.poll_loop` span every poll nests under.
    span: simkit::SpanId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::tests::fixture;
    use crate::agent::AgentConfig;
    use gridsim::gram::ExecutionModel;
    use simkit::KB;
    use std::cell::Cell;

    type OutcomeSlot = Rc<RefCell<Option<Result<PollStats, (PollError, PollStats)>>>>;

    struct Ready {
        sim: Sim,
        agent: Rc<CyberaideAgent>,
        site: Rc<GridSite>,
        session: SessionId,
        handle: JobHandle,
    }

    fn submit_job(runtime_s: u64, output_bytes: f64, limit_min: u64) -> Ready {
        let mut sim = Sim::new(0);
        let f = fixture(&mut sim, AgentConfig::default());
        let sid = Rc::new(Cell::new(None));
        let s2 = sid.clone();
        f.agent.authenticate(&mut sim, "alice", "pw", move |_, r| {
            s2.set(Some(r.unwrap()));
        });
        sim.run();
        let session = sid.get().unwrap();
        f.agent
            .stage_file(&mut sim, session, &f.site, "app.exe", 4096.0, |_, r| {
                r.unwrap()
            });
        sim.run();
        let jd = f
            .agent
            .generate_job_description("app.exe", &[], "app.out")
            .walltime(Duration::from_secs(limit_min * 60));
        let handle: Rc<RefCell<Option<JobHandle>>> = Rc::new(RefCell::new(None));
        let h2 = handle.clone();
        f.agent.submit_job(
            &mut sim,
            session,
            &f.site,
            &jd,
            ExecutionModel {
                actual_runtime: Duration::from_secs(runtime_s),
                output_bytes,
            },
            move |_, r| {
                *h2.borrow_mut() = Some(r.expect("submit"));
            },
        );
        // drain only the submission (job may still be running)
        let deadline = sim.now() + Duration::from_secs(10);
        sim.run_until(deadline);
        let handle = handle.borrow().clone().expect("handle");
        Ready {
            sim,
            agent: f.agent,
            site: f.site,
            session,
            handle,
        }
    }

    #[test]
    fn polls_until_completion_with_refetch_overhead() {
        let mut r = submit_job(60, 100.0 * KB, 60);
        let got: OutcomeSlot = Rc::new(RefCell::new(None));
        let g = got.clone();
        OutputPoller::default().start(
            &mut r.sim,
            Rc::clone(&r.agent),
            r.session,
            Rc::clone(&r.site),
            r.handle.clone(),
            move |_, res| *g.borrow_mut() = Some(res),
        );
        r.sim.run();
        let stats = got.borrow().clone().unwrap().expect("completed");
        assert_eq!(stats.final_bytes, 100.0 * KB);
        // 60 s runtime at ~9 s interval → several polls, each re-fetching
        assert!(stats.polls >= 4, "polls {}", stats.polls);
        // the re-fetch inefficiency: total fetched > final output
        assert!(
            stats.bytes_fetched > stats.final_bytes,
            "{stats:?}"
        );
        // periodic local spooling happened
        let disk = r.sim.recorder_ref().total("appliance.disk.write.bytes");
        assert!(disk > 100.0 * KB, "{disk}");
    }

    #[test]
    fn walltime_killed_job_reports_failure() {
        // runtime 10 min but limit 1 min → killed
        let mut r = submit_job(600, 50.0 * KB, 1);
        let got: OutcomeSlot = Rc::new(RefCell::new(None));
        let g = got.clone();
        OutputPoller::default().start(
            &mut r.sim,
            Rc::clone(&r.agent),
            r.session,
            Rc::clone(&r.site),
            r.handle.clone(),
            move |_, res| *g.borrow_mut() = Some(res),
        );
        r.sim.run();
        let outcome = got.borrow().clone().unwrap();
        match outcome {
            Err((PollError::JobFailed(JobOutcome::WalltimeExceeded), stats)) => {
                assert!(stats.polls >= 1);
            }
            other => panic!("expected walltime failure, got {other:?}"),
        }
    }

    #[test]
    fn crash_killed_job_surfaces_as_node_failure() {
        // a long job whose replica VM "dies" two minutes in
        let mut r = submit_job(600, 50.0 * KB, 60);
        let got: OutcomeSlot = Rc::new(RefCell::new(None));
        let g = got.clone();
        OutputPoller::default().start(
            &mut r.sim,
            Rc::clone(&r.agent),
            r.session,
            Rc::clone(&r.site),
            r.handle.clone(),
            move |_, res| *g.borrow_mut() = Some(res),
        );
        let site = Rc::clone(&r.site);
        let job = r.handle.job;
        r.sim.schedule(Duration::from_secs(120), move |sim| {
            gridsim::gram::Gatekeeper::kill(site.gatekeeper(), sim, job).unwrap();
        });
        r.sim.run();
        let outcome = got.borrow().clone().unwrap();
        match outcome {
            Err((PollError::JobFailed(JobOutcome::NodeFailure), stats)) => {
                assert!(stats.polls >= 2, "{stats:?}");
            }
            other => panic!("expected node failure, got {other:?}"),
        }
    }

    #[test]
    fn timeout_gives_up() {
        let mut r = submit_job(10_000, 10.0, 600);
        let got: OutcomeSlot = Rc::new(RefCell::new(None));
        let g = got.clone();
        OutputPoller {
            interval: Duration::from_secs(9),
            timeout: Duration::from_secs(60),
        }
        .start(
            &mut r.sim,
            Rc::clone(&r.agent),
            r.session,
            Rc::clone(&r.site),
            r.handle.clone(),
            move |_, res| *g.borrow_mut() = Some(res),
        );
        // run past the timeout but not to job completion
        let deadline = r.sim.now() + Duration::from_secs(300);
        r.sim.run_until(deadline);
        let outcome = got.borrow().clone().unwrap();
        match outcome {
            Err((PollError::TimedOut { polls }, _)) => assert!(polls >= 5, "{polls}"),
            other => panic!("expected timeout, got {other:?}"),
        }
        r.sim.run();
    }

    #[test]
    fn unknown_job_surfaces_grid_error() {
        let mut r = submit_job(5, 10.0, 60);
        let bogus = JobHandle {
            site: "tg1".into(),
            job: 999,
            output_file: "x".into(),
        };
        let got: OutcomeSlot = Rc::new(RefCell::new(None));
        let g = got.clone();
        OutputPoller::default().start(
            &mut r.sim,
            Rc::clone(&r.agent),
            r.session,
            Rc::clone(&r.site),
            bogus,
            move |_, res| *g.borrow_mut() = Some(res),
        );
        r.sim.run();
        let outcome = got.borrow().clone().unwrap();
        match outcome {
            Err((PollError::Grid(GridError::NoSuchJob(999)), _)) => {}
            other => panic!("expected NoSuchJob, got {other:?}"),
        }
    }

    #[test]
    fn poll_interval_spacing_matches_configuration() {
        let mut r = submit_job(45, 20.0 * KB, 60);
        OutputPoller {
            interval: Duration::from_secs(9),
            timeout: Duration::from_secs(3600),
        }
        .start(
            &mut r.sim,
            Rc::clone(&r.agent),
            r.session,
            Rc::clone(&r.site),
            r.handle.clone(),
            |_, res| {
                res.expect("completes");
            },
        );
        r.sim.run();
        // disk write peaks should appear in several distinct 3 s buckets
        let series = r
            .sim
            .recorder_ref()
            .series("appliance.disk.write.bytes")
            .expect("spooled");
        let peaks = series.peaks(1.0);
        assert!(peaks.len() >= 3, "expected periodic peaks, got {peaks:?}");
    }
}
