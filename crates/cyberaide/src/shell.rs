//! Cyberaide Shell: the toolkit's command-line layer.
//!
//! "Several tools have been developed under the Cyberaide banner;
//! well-known examples are Cyberaide toolkit and Cyberaide Shell" (§III).
//! The shell is a thin, scriptable command interpreter over the
//! [`CyberaideAgent`]: authenticate, inspect the Grid, stage files, submit
//! jobs, and poll output — the workflow a 2010 grid user ran by hand, and
//! the workflow onServe automates.
//!
//! Commands (see [`Shell::help`]):
//!
//! ```text
//! auth <user> <passphrase>
//! logout
//! info
//! stage <site> <name> <bytes>
//! submit <site> <exe> <runtime_s> <output_bytes> [arg ...]
//! status <site> <job>
//! poll <site> <job>
//! wait <site> <job> [interval_s]
//! help
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use gridsim::gram::{ExecutionModel, JobHandle};
use simkit::{Duration, Sim};

use crate::agent::{CyberaideAgent, PollResult, SessionId};
use crate::poller::OutputPoller;

/// Completion continuation of one command: the rendered output or an
/// error line.
pub type ShellDone = Box<dyn FnOnce(&mut Sim, Result<String, String>)>;

/// A script run's collected `(command, result)` lines.
pub type Transcript = Vec<(String, Result<String, String>)>;

/// Completion continuation of a whole script run.
type ScriptDone = Box<dyn FnOnce(&mut Sim, Transcript)>;

/// The interpreter. Holds the login session and the handles of jobs
/// submitted through it (so `status`/`poll`/`wait` can refer to them by
/// number).
pub struct Shell {
    agent: Rc<CyberaideAgent>,
    session: RefCell<Option<SessionId>>,
    jobs: RefCell<Vec<JobHandle>>,
}

/// Split a command line into tokens, honouring double quotes.
pub fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut had_any = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                had_any = true;
            }
            c if c.is_whitespace() && !in_quotes => {
                if had_any {
                    out.push(std::mem::take(&mut cur));
                    had_any = false;
                }
            }
            c => {
                cur.push(c);
                had_any = true;
            }
        }
    }
    if in_quotes {
        return Err("unterminated quote".into());
    }
    if had_any {
        out.push(cur);
    }
    Ok(out)
}

impl Shell {
    /// A shell bound to an agent.
    pub fn new(agent: Rc<CyberaideAgent>) -> Rc<Shell> {
        Rc::new(Shell {
            agent,
            session: RefCell::new(None),
            jobs: RefCell::new(Vec::new()),
        })
    }

    /// The help text.
    pub fn help() -> &'static str {
        "commands:\n\
         \x20 auth <user> <passphrase>                   open a Grid session via MyProxy\n\
         \x20 logout                                     drop the session\n\
         \x20 info                                       site load snapshot\n\
         \x20 stage <site> <name> <bytes>                stage a file to a site\n\
         \x20 submit <site> <exe> <runtime_s> <out_b> [arg ...]   submit a job\n\
         \x20 status <site> <job>                        GRAM status query\n\
         \x20 poll <site> <job>                          one tentative output request\n\
         \x20 wait <site> <job> [interval_s]             poll until the job finishes\n\
         \x20 help                                       this text"
    }

    /// Current session, if logged in.
    pub fn session(&self) -> Option<SessionId> {
        *self.session.borrow()
    }

    /// Jobs submitted through this shell (index = the `<job>` argument).
    pub fn job_count(&self) -> usize {
        self.jobs.borrow().len()
    }

    fn require_session(&self) -> Result<SessionId, String> {
        self.session.borrow().ok_or_else(|| "not authenticated (use: auth <user> <pass>)".into())
    }

    fn job(&self, idx_text: &str) -> Result<JobHandle, String> {
        let idx: usize = idx_text
            .parse()
            .map_err(|_| format!("bad job number: {idx_text}"))?;
        self.jobs
            .borrow()
            .get(idx)
            .cloned()
            .ok_or_else(|| format!("no such job: {idx}"))
    }

    fn site(
        &self,
        name: &str,
    ) -> Result<Rc<gridsim::GridSite>, String> {
        self.agent
            .grid()
            .site(name)
            .map(Rc::clone)
            .map_err(|e| e.to_string())
    }

    /// Execute one command line; `done` receives the rendered output.
    pub fn exec(self: &Rc<Self>, sim: &mut Sim, line: &str, done: ShellDone) {
        let respond_now = |sim: &mut Sim, done: ShellDone, r: Result<String, String>| {
            sim.schedule(Duration::ZERO, move |sim| done(sim, r));
        };
        let tokens = match tokenize(line) {
            Ok(t) => t,
            Err(e) => return respond_now(sim, done, Err(e)),
        };
        let Some(cmd) = tokens.first().map(String::as_str) else {
            return respond_now(sim, done, Ok(String::new()));
        };
        let args: Vec<&str> = tokens.iter().skip(1).map(String::as_str).collect();
        match (cmd, args.as_slice()) {
            ("help", _) => respond_now(sim, done, Ok(Self::help().to_owned())),
            ("auth", [user, pass]) => {
                let shell = Rc::clone(self);
                let user2 = (*user).to_owned();
                self.agent
                    .authenticate(sim, user, pass, move |sim, r| match r {
                        Ok(sid) => {
                            *shell.session.borrow_mut() = Some(sid);
                            done(sim, Ok(format!("session {sid} opened for {user2}")));
                        }
                        Err(e) => done(sim, Err(format!("authentication failed: {e}"))),
                    });
            }
            ("logout", []) => {
                let r = match self.session.borrow_mut().take() {
                    Some(sid) => {
                        self.agent.logout(sid);
                        Ok("logged out".to_owned())
                    }
                    None => Err("no session".to_owned()),
                };
                respond_now(sim, done, r);
            }
            ("info", []) => {
                let mut out = String::from("site        cores  free  queued  est.wait\n");
                for i in self.agent.grid().info(sim.now()) {
                    let wait = if i.est_wait == Duration::MAX {
                        "inf".to_owned()
                    } else {
                        format!("{:.0}s", i.est_wait.as_secs_f64())
                    };
                    out.push_str(&format!(
                        "{:<11} {:>5} {:>5} {:>7} {:>9}\n",
                        i.name, i.total_cores, i.free_cores, i.queue_len, wait
                    ));
                }
                respond_now(sim, done, Ok(out));
            }
            ("stage", [site, name, bytes]) => {
                let parsed: Result<(SessionId, Rc<gridsim::GridSite>, f64), String> = (|| {
                    let sid = self.require_session()?;
                    let site = self.site(site)?;
                    let bytes: f64 = bytes.parse().map_err(|_| format!("bad size: {bytes}"))?;
                    Ok((sid, site, bytes))
                })();
                match parsed {
                    Err(e) => respond_now(sim, done, Err(e)),
                    Ok((sid, site, bytes)) => {
                        let name2 = (*name).to_owned();
                        let site_name = site.name().to_owned();
                        self.agent
                            .stage_file(sim, sid, &site, name, bytes, move |sim, r| match r {
                                Ok(()) => done(
                                    sim,
                                    Ok(format!("staged {name2} ({bytes:.0} B) to {site_name}")),
                                ),
                                Err(e) => done(sim, Err(format!("staging failed: {e}"))),
                            });
                    }
                }
            }
            ("submit", [site, exe, runtime, out_bytes, rest @ ..]) => {
                let parsed: Result<_, String> = (|| {
                    let sid = self.require_session()?;
                    let site = self.site(site)?;
                    let runtime: u64 =
                        runtime.parse().map_err(|_| format!("bad runtime: {runtime}"))?;
                    let out_b: f64 = out_bytes
                        .parse()
                        .map_err(|_| format!("bad output size: {out_bytes}"))?;
                    Ok((sid, site, runtime, out_b))
                })();
                match parsed {
                    Err(e) => respond_now(sim, done, Err(e)),
                    Ok((sid, site, runtime, out_b)) => {
                        let jd = self
                            .agent
                            .generate_job_description(
                                exe,
                                &rest.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
                                &format!("{exe}.out"),
                            )
                            .walltime(Duration::from_secs(runtime * 4 + 600));
                        let exec = ExecutionModel {
                            actual_runtime: Duration::from_secs(runtime),
                            output_bytes: out_b,
                        };
                        let shell = Rc::clone(self);
                        self.agent.clone().submit_job(
                            sim,
                            sid,
                            &site,
                            &jd,
                            exec,
                            move |sim, r| match r {
                                Ok(handle) => {
                                    let idx = shell.jobs.borrow().len();
                                    let site = handle.site.clone();
                                    shell.jobs.borrow_mut().push(handle);
                                    done(sim, Ok(format!("job {idx} submitted to {site}")));
                                }
                                Err(e) => done(sim, Err(format!("submission failed: {e}"))),
                            },
                        );
                    }
                }
            }
            ("status", [site, job]) => {
                let parsed: Result<_, String> = (|| {
                    let sid = self.require_session()?;
                    Ok((sid, self.site(site)?, self.job(job)?))
                })();
                match parsed {
                    Err(e) => respond_now(sim, done, Err(e)),
                    Ok((sid, site, handle)) => {
                        self.agent
                            .job_status(sim, sid, &site, &handle, move |sim, r| match r {
                                Ok(state) => done(sim, Ok(format!("{state:?}"))),
                                Err(e) => done(
                                    sim,
                                    Err(format!("status failed: {e} — use 'poll' instead")),
                                ),
                            });
                    }
                }
            }
            ("poll", [site, job]) => {
                let parsed: Result<_, String> = (|| {
                    let sid = self.require_session()?;
                    Ok((sid, self.site(site)?, self.job(job)?))
                })();
                match parsed {
                    Err(e) => respond_now(sim, done, Err(e)),
                    Ok((sid, site, handle)) => {
                        self.agent
                            .poll_output(sim, sid, &site, &handle, move |sim, r| match r {
                                Ok(PollResult::NotReady) => {
                                    done(sim, Ok("no output yet".to_owned()))
                                }
                                Ok(PollResult::Partial(b)) => {
                                    done(sim, Ok(format!("running: {b:.0} B of output so far")))
                                }
                                Ok(PollResult::Complete(b)) => {
                                    done(sim, Ok(format!("complete: {b:.0} B of output")))
                                }
                                Ok(PollResult::Failed(o)) => {
                                    done(sim, Err(format!("job failed: {o:?}")))
                                }
                                Err(e) => done(sim, Err(format!("poll failed: {e}"))),
                            });
                    }
                }
            }
            ("wait", [site, job, rest @ ..]) => {
                let parsed: Result<_, String> = (|| {
                    let sid = self.require_session()?;
                    let interval = match rest {
                        [] => 9u64,
                        [secs] => secs.parse().map_err(|_| format!("bad interval: {secs}"))?,
                        _ => return Err("usage: wait <site> <job> [interval_s]".into()),
                    };
                    Ok((sid, self.site(site)?, self.job(job)?, interval))
                })();
                match parsed {
                    Err(e) => respond_now(sim, done, Err(e)),
                    Ok((sid, site, handle, interval)) => {
                        OutputPoller {
                            interval: Duration::from_secs(interval),
                            timeout: Duration::from_secs(7 * 86400),
                        }
                        .start(
                            sim,
                            Rc::clone(&self.agent),
                            sid,
                            site,
                            handle,
                            move |sim, r| match r {
                                Ok(stats) => done(
                                    sim,
                                    Ok(format!(
                                        "done: {:.0} B of output after {} polls",
                                        stats.final_bytes, stats.polls
                                    )),
                                ),
                                Err((e, stats)) => done(
                                    sim,
                                    Err(format!("wait failed after {} polls: {e}", stats.polls)),
                                ),
                            },
                        );
                    }
                }
            }
            (cmd, _) => respond_now(
                sim,
                done,
                Err(format!("unknown command or bad arguments: {cmd} (try 'help')")),
            ),
        }
    }

    /// Run a script: execute lines sequentially (each command starts when
    /// the previous one finished), collecting `(line, result)` transcripts.
    pub fn run_script<F>(self: &Rc<Self>, sim: &mut Sim, lines: Vec<String>, done: F)
    where
        F: FnOnce(&mut Sim, Transcript) + 'static,
    {
        fn step(
            shell: Rc<Shell>,
            sim: &mut Sim,
            mut remaining: std::vec::IntoIter<String>,
            mut transcript: Transcript,
            done: ScriptDone,
        ) {
            match remaining.next() {
                None => done(sim, transcript),
                Some(line) => {
                    let shell2 = Rc::clone(&shell);
                    let line2 = line.clone();
                    shell.exec(
                        sim,
                        &line,
                        Box::new(move |sim, result| {
                            transcript.push((line2, result));
                            step(shell2, sim, remaining, transcript, done);
                        }),
                    );
                }
            }
        }
        step(
            Rc::clone(self),
            sim,
            lines.into_iter(),
            Vec::new(),
            Box::new(done),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::tests::fixture;
    use crate::agent::AgentConfig;

    fn shell_world() -> (Sim, Rc<Shell>) {
        let mut sim = Sim::new(77);
        let f = fixture(&mut sim, AgentConfig::default());
        (sim, Shell::new(f.agent))
    }

    fn exec_ok(sim: &mut Sim, shell: &Rc<Shell>, line: &str) -> String {
        let out: Rc<RefCell<Option<Result<String, String>>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        shell.exec(
            sim,
            line,
            Box::new(move |_, r| {
                *o2.borrow_mut() = Some(r);
            }),
        );
        sim.run();
        let r = out.borrow_mut().take().expect("responded");
        r.unwrap_or_else(|e| panic!("command '{line}' failed: {e}"))
    }

    fn exec_err(sim: &mut Sim, shell: &Rc<Shell>, line: &str) -> String {
        let out: Rc<RefCell<Option<Result<String, String>>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        shell.exec(
            sim,
            line,
            Box::new(move |_, r| {
                *o2.borrow_mut() = Some(r);
            }),
        );
        sim.run();
        let r = out.borrow_mut().take().expect("responded");
        r.expect_err("command should have failed")
    }

    #[test]
    fn tokenizer_handles_quotes() {
        assert_eq!(tokenize("a b c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            tokenize("submit s1 \"my tool\" 10 0").unwrap(),
            vec!["submit", "s1", "my tool", "10", "0"]
        );
        assert_eq!(tokenize("  spaced   out  ").unwrap(), vec!["spaced", "out"]);
        assert_eq!(tokenize("empty \"\" token").unwrap(), vec!["empty", "", "token"]);
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("").unwrap().is_empty());
    }

    #[test]
    fn full_session_workflow() {
        let (mut sim, shell) = shell_world();
        // unauthenticated staging fails
        let e = exec_err(&mut sim, &shell, "stage tg1 a.exe 1000");
        assert!(e.contains("not authenticated"), "{e}");
        // auth
        let out = exec_ok(&mut sim, &shell, "auth alice pw");
        assert!(out.contains("session"), "{out}");
        // info lists the site
        let out = exec_ok(&mut sim, &shell, "info");
        assert!(out.contains("tg1"), "{out}");
        // stage + submit + wait
        let out = exec_ok(&mut sim, &shell, "stage tg1 app.exe 4096");
        assert!(out.contains("staged app.exe"), "{out}");
        let out = exec_ok(&mut sim, &shell, "submit tg1 app.exe 30 2048 --fast");
        assert!(out.contains("job 0 submitted"), "{out}");
        let out = exec_ok(&mut sim, &shell, "wait tg1 0");
        assert!(out.contains("done: 2048 B"), "{out}");
        // status is the broken interface by default
        let e = exec_err(&mut sim, &shell, "status tg1 0");
        assert!(e.contains("use 'poll' instead"), "{e}");
        // poll after completion reports complete
        let out = exec_ok(&mut sim, &shell, "poll tg1 0");
        assert!(out.contains("complete"), "{out}");
        // logout
        assert!(exec_ok(&mut sim, &shell, "logout").contains("logged out"));
        assert!(shell.session().is_none());
    }

    #[test]
    fn bad_inputs_are_reported() {
        let (mut sim, shell) = shell_world();
        exec_ok(&mut sim, &shell, "auth alice pw");
        assert!(exec_err(&mut sim, &shell, "bogus").contains("unknown command"));
        assert!(exec_err(&mut sim, &shell, "stage nowhere x 10").contains("no such site"));
        assert!(exec_err(&mut sim, &shell, "stage tg1 x huge").contains("bad size"));
        assert!(exec_err(&mut sim, &shell, "poll tg1 7").contains("no such job"));
        assert!(exec_err(&mut sim, &shell, "submit tg1 ghost.exe 10 0")
            .contains("submission failed"));
        assert!(exec_err(&mut sim, &shell, "auth alice wrong").contains("authentication failed"));
    }

    #[test]
    fn script_runs_sequentially_and_collects_transcript() {
        let (mut sim, shell) = shell_world();
        let script = vec![
            "auth alice pw".to_string(),
            "stage tg1 s.exe 2048".to_string(),
            "submit tg1 s.exe 10 512".to_string(),
            "wait tg1 0 3".to_string(),
            "logout".to_string(),
        ];
        let got: Rc<RefCell<Transcript>> = Rc::new(RefCell::new(Vec::new()));
        let g2 = got.clone();
        shell.run_script(&mut sim, script, move |_, transcript| {
            *g2.borrow_mut() = transcript;
        });
        sim.run();
        let t = got.borrow();
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|(_, r)| r.is_ok()), "{t:?}");
        assert!(t[3].1.as_ref().unwrap().contains("done: 512 B"));
    }

    #[test]
    fn help_lists_every_command() {
        for cmd in ["auth", "logout", "info", "stage", "submit", "status", "poll", "wait"] {
            assert!(Shell::help().contains(cmd), "help missing {cmd}");
        }
    }
}
