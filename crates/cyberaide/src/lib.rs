#![warn(missing_docs)]

//! # cyberaide — the toolkit layer onServe is built on
//!
//! "The Cyberaide onServe is developed based on the Cyberaide toolkit,
//! which is a light weight middleware for accessing production Grids"
//! (§III). The toolkit's **agent** is itself a Web service on the
//! appliance: onServe calls it to authenticate, stage files, generate job
//! descriptions, submit jobs and — because "the actual status of the job
//! can't be retrieved" in the paper's build — to *tentatively* poll for
//! output (§VIII-B). This crate provides:
//!
//! * [`agent`] — the Cyberaide agent: sessions (MyProxy-backed
//!   authentication with the paper's credential-exchange traffic), staging,
//!   RSL generation, GRAM submission, tentative output polling, and the
//!   deliberately-broken status interface (togglable for the ablation).
//! * [`poller`] — the client-side polling loop: re-request output at a
//!   fixed interval until the job completes, writing each response to the
//!   local disk — the periodic disk-write peaks of Figures 6–7.
//! * [`shell`] — Cyberaide Shell (named in §III): the scriptable command
//!   layer over the agent, i.e. the manual JSE workflow onServe automates.

pub mod agent;
pub mod poller;
pub mod shell;

pub use agent::{AgentConfig, CyberaideAgent, PollResult, SessionId};
pub use poller::{OutputPoller, PollError, PollStats};
pub use shell::Shell;
