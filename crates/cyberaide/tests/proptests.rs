//! Property-based invariants of the toolkit layer.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use cyberaide::agent::{AgentConfig, CyberaideAgent};
use cyberaide::{OutputPoller, PollError};
use gridsim::gram::{ExecutionModel, JobHandle};
use gridsim::{GridSite, MyProxyServer, ProductionGrid, SiteSpec};
use proptest::prelude::*;
use simkit::{Duplex, Duration, Host, HostSpec, Sim, SimTime, KB};

struct World {
    sim: Sim,
    agent: Rc<CyberaideAgent>,
    site: Rc<GridSite>,
    session: u64,
}

fn world(seed: u64) -> World {
    let mut sim = Sim::new(seed);
    let grid = Rc::new(ProductionGrid::new(
        "appliance",
        seed,
        vec![SiteSpec::teragrid_like("s1", 8, 8)],
    ));
    let cred = grid.enroll_user("/CN=u", "u", SimTime::ZERO, Duration::from_secs(7 * 86400));
    let myproxy = Rc::new(RefCell::new(MyProxyServer::new()));
    myproxy
        .borrow_mut()
        .store("u", "pw", cred.delegate(SimTime::ZERO, Duration::from_secs(86400)));
    let site = Rc::clone(grid.site("s1").unwrap());
    let agent = CyberaideAgent::new(
        grid,
        myproxy,
        Host::new(&HostSpec::commodity("myproxy")),
        Rc::new(Duplex::new(
            "mp",
            "appliance",
            "myproxy",
            200.0 * KB,
            Duration::from_millis(30),
        )),
        Host::new(&HostSpec::commodity("appliance")),
        AgentConfig::default(),
    );
    let sid = Rc::new(Cell::new(None));
    let s2 = sid.clone();
    agent.authenticate(&mut sim, "u", "pw", move |_, r| {
        s2.set(Some(r.expect("auth")));
    });
    sim.run();
    let session = sid.get().unwrap();
    World {
        sim,
        agent,
        site,
        session,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The polling loop always terminates with exactly one outcome, for
    /// any (runtime, interval, timeout) combination, and its poll count is
    /// consistent with the interval.
    #[test]
    fn poller_always_terminates_once(
        runtime_s in 1u64..600,
        interval_s in 1u64..60,
        timeout_s in 10u64..900,
        out_kb in 0u64..64,
    ) {
        let mut w = world(runtime_s ^ (interval_s << 10));
        w.agent.stage_file(&mut w.sim, w.session, &w.site, "e", 1024.0, |_, r| { r.unwrap(); });
        w.sim.run();
        let jd = w.agent.generate_job_description("e", &[], "e.out")
            .walltime(Duration::from_secs(2 * runtime_s + 60));
        let handle: Rc<RefCell<Option<JobHandle>>> = Rc::new(RefCell::new(None));
        let h2 = handle.clone();
        w.agent.submit_job(
            &mut w.sim,
            w.session,
            &w.site,
            &jd,
            ExecutionModel {
                actual_runtime: Duration::from_secs(runtime_s),
                output_bytes: (out_kb * 1024) as f64,
            },
            move |_, r| { *h2.borrow_mut() = Some(r.expect("submit")); },
        );
        let deadline = w.sim.now() + Duration::from_secs(5);
        w.sim.run_until(deadline);
        let handle = handle.borrow().clone().expect("handle");
        let outcomes = Rc::new(Cell::new(0u32));
        let o2 = outcomes.clone();
        let got_err = Rc::new(Cell::new(false));
        let e2 = got_err.clone();
        OutputPoller {
            interval: Duration::from_secs(interval_s),
            timeout: Duration::from_secs(timeout_s),
        }
        .start(
            &mut w.sim,
            Rc::clone(&w.agent),
            w.session,
            Rc::clone(&w.site),
            handle,
            move |_, res| {
                o2.set(o2.get() + 1);
                if let Err((PollError::TimedOut { .. }, _)) = res {
                    e2.set(true);
                }
            },
        );
        w.sim.run();
        prop_assert_eq!(outcomes.get(), 1, "poller must report exactly once");
        // if it timed out, the timeout must actually have been shorter
        // than the job (+ slack for staging/submission phases)
        if got_err.get() {
            prop_assert!(timeout_s <= runtime_s + 2 * interval_s + 30,
                "spurious timeout: timeout {} vs runtime {}", timeout_s, runtime_s);
        }
    }

    /// Stage + submit works for any executable size; staging time is
    /// monotone in size.
    #[test]
    fn staging_time_monotone(size_a in 1u64..5_000_000, size_b in 1u64..5_000_000) {
        let time_for = |bytes: u64| {
            let mut w = world(7);
            let t0 = w.sim.now();
            let at = Rc::new(Cell::new(0.0));
            let a2 = at.clone();
            w.agent.stage_file(&mut w.sim, w.session, &w.site, "f", bytes as f64, move |sim, r| {
                r.unwrap();
                a2.set(sim.now().as_secs_f64());
            });
            w.sim.run();
            at.get() - t0.as_secs_f64()
        };
        let (lo, hi) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        prop_assert!(time_for(lo) <= time_for(hi) + 1e-6);
    }
}
