//! On-demand deployment and the appliance state machine.
//!
//! Deploying copies the image to the virtualization host, boots the VM and
//! starts the recipe's services; the running appliance then *is* the access
//! layer — a [`simkit::Host`] whose CPU/disk absorb all middleware work.
//! States and the legal transitions:
//!
//! ```text
//! Deploying → Booting → Running ⇄ Suspended
//!      \          \         \________ Destroyed (from any live state)
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use simkit::{Duration, Host, HostSpec, Link, Sim, SimTime};

use crate::image::ApplianceImage;

/// Lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplianceState {
    /// Image being copied to the virtualization host.
    Deploying,
    /// VM booting, services starting.
    Booting,
    /// Serving requests.
    Running,
    /// Paused; RAM retained, no service.
    Suspended,
    /// Gone.
    Destroyed,
}

/// Illegal lifecycle operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApplianceError {
    /// State the appliance was in.
    pub state: ApplianceState,
    /// Operation that was attempted.
    pub attempted: &'static str,
}

impl std::fmt::Display for ApplianceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot {} while {:?}", self.attempted, self.state)
    }
}

impl std::error::Error for ApplianceError {}

/// Where and how to deploy.
#[derive(Clone, Debug)]
pub struct DeploySpec {
    /// Name for the appliance host (metric prefix), e.g. `"appliance"`.
    pub host_name: String,
    /// Host profile the VM is carved from.
    pub profile: HostSpec,
    /// Fixed hypervisor/VM boot cost.
    pub boot_fixed: Duration,
    /// Per-service start cost.
    pub per_service_boot: Duration,
}

impl DeploySpec {
    /// Deploy as `host_name` on a commodity server, with 2010-ish boot
    /// costs (tens of seconds).
    pub fn default_for(host_name: &str) -> DeploySpec {
        DeploySpec {
            host_name: host_name.to_owned(),
            profile: HostSpec::commodity(host_name),
            boot_fixed: Duration::from_secs(25),
            per_service_boot: Duration::from_secs(4),
        }
    }
}

/// A deployed appliance instance.
pub struct Appliance {
    state: RefCell<ApplianceState>,
    host: Rc<Host>,
    image_name: String,
    services: Vec<String>,
    deployed_at: RefCell<SimTime>,
    killed: std::cell::Cell<bool>,
}

impl Appliance {
    /// Deploy `image` on demand: copy it over `image_link` (image store →
    /// virtualization host), write it to local disk, boot, start services.
    /// `done` fires when the appliance reaches `Running`.
    pub fn deploy<F>(
        sim: &mut Sim,
        image: &ApplianceImage,
        image_link: &Rc<Link>,
        spec: &DeploySpec,
        done: F,
    ) -> Rc<Appliance>
    where
        F: FnOnce(&mut Sim, &Rc<Appliance>) + 'static,
    {
        let mut profile = spec.profile.clone();
        profile.name = spec.host_name.clone();
        let appliance = Rc::new(Appliance {
            state: RefCell::new(ApplianceState::Deploying),
            host: Host::new(&profile),
            image_name: image.name.clone(),
            services: image.boot_services.clone(),
            deployed_at: RefCell::new(sim.now()),
            killed: std::cell::Cell::new(false),
        });
        let app = Rc::clone(&appliance);
        let bytes = image.bytes;
        let boot = spec.boot_fixed
            + spec
                .per_service_boot
                .saturating_mul(image.boot_services.len() as u64);
        image_link.transfer(sim, bytes, move |sim| {
            let app2 = Rc::clone(&app);
            app.host.write_disk(sim, bytes, move |sim| {
                *app2.state.borrow_mut() = ApplianceState::Booting;
                let app3 = Rc::clone(&app2);
                sim.schedule(boot, move |sim| {
                    // a destroy may have raced the boot
                    if *app3.state.borrow() == ApplianceState::Booting {
                        *app3.state.borrow_mut() = ApplianceState::Running;
                        *app3.deployed_at.borrow_mut() = sim.now();
                        done(sim, &app3);
                    }
                });
            });
        });
        appliance
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ApplianceState {
        *self.state.borrow()
    }

    /// The appliance VM's host (only meaningful while `Running`).
    pub fn host(&self) -> &Rc<Host> {
        &self.host
    }

    /// Image this instance was started from.
    pub fn image_name(&self) -> &str {
        &self.image_name
    }

    /// Services started at boot.
    pub fn services(&self) -> &[String] {
        &self.services
    }

    /// Instant the appliance reached `Running`.
    pub fn running_since(&self) -> SimTime {
        *self.deployed_at.borrow()
    }

    fn transition(
        &self,
        from: &[ApplianceState],
        to: ApplianceState,
        op: &'static str,
    ) -> Result<(), ApplianceError> {
        let mut st = self.state.borrow_mut();
        if from.contains(&*st) {
            *st = to;
            Ok(())
        } else {
            Err(ApplianceError {
                state: *st,
                attempted: op,
            })
        }
    }

    /// Pause a running appliance.
    pub fn suspend(&self) -> Result<(), ApplianceError> {
        self.transition(&[ApplianceState::Running], ApplianceState::Suspended, "suspend")
    }

    /// Resume a suspended appliance.
    pub fn resume(&self) -> Result<(), ApplianceError> {
        self.transition(&[ApplianceState::Suspended], ApplianceState::Running, "resume")
    }

    /// Destroy from any live state.
    pub fn destroy(&self) -> Result<(), ApplianceError> {
        self.transition(
            &[
                ApplianceState::Deploying,
                ApplianceState::Booting,
                ApplianceState::Running,
                ApplianceState::Suspended,
            ],
            ApplianceState::Destroyed,
            "destroy",
        )
    }

    /// Pull the plug: the involuntary-loss path (spot reclaim, hypervisor
    /// death, kernel panic). Same state transition as [`Appliance::destroy`]
    /// but semantically *no drain happened* — in-flight work on the VM is
    /// simply gone, and [`Appliance::was_killed`] records the distinction
    /// so owners can tell crash-loss from voluntary teardown.
    pub fn destroy_now(&self) -> Result<(), ApplianceError> {
        self.transition(
            &[
                ApplianceState::Deploying,
                ApplianceState::Booting,
                ApplianceState::Running,
                ApplianceState::Suspended,
            ],
            ApplianceState::Destroyed,
            "destroy_now",
        )?;
        self.killed.set(true);
        Ok(())
    }

    /// Whether this appliance died by [`Appliance::destroy_now`] rather
    /// than a drained [`Appliance::destroy`].
    pub fn was_killed(&self) -> bool {
        self.killed.get()
    }

    /// Whether the appliance is serving.
    pub fn is_running(&self) -> bool {
        self.state() == ApplianceState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::build_image;
    use crate::recipe::ApplianceRecipe;
    use simkit::{GBIT_PER_S, MB};
    use std::cell::Cell;

    fn image() -> ApplianceImage {
        ApplianceImage {
            name: "cyberaide-onserve".into(),
            bytes: 600.0 * MB,
            boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
            recipe_fingerprint: 1,
        }
    }

    fn link() -> Rc<Link> {
        Link::new("imgstore", "store", "vmm", GBIT_PER_S, Duration::from_millis(5))
    }

    #[test]
    fn deploy_reaches_running_with_timing() {
        let mut sim = Sim::new(0);
        let at = Rc::new(Cell::new(-1.0));
        let at2 = at.clone();
        let app = Appliance::deploy(
            &mut sim,
            &image(),
            &link(),
            &DeploySpec::default_for("appliance"),
            move |sim, app| {
                assert!(app.is_running());
                at2.set(sim.now().as_secs_f64());
            },
        );
        assert_eq!(app.state(), ApplianceState::Deploying);
        sim.run();
        assert_eq!(app.state(), ApplianceState::Running);
        // copy(600MB @ 125MB/s ≈ 4.8s) + disk write(600/35 ≈ 17.1s)
        // + boot 25s + 3 services × 4s = ~59s
        assert!(at.get() > 50.0 && at.get() < 70.0, "running at {}", at.get());
        assert_eq!(app.running_since().as_secs_f64(), at.get());
        assert_eq!(app.services().len(), 3);
        assert_eq!(app.image_name(), "cyberaide-onserve");
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut sim = Sim::new(0);
        let app = Appliance::deploy(
            &mut sim,
            &image(),
            &link(),
            &DeploySpec::default_for("a"),
            |_, _| {},
        );
        sim.run();
        app.suspend().unwrap();
        assert_eq!(app.state(), ApplianceState::Suspended);
        assert!(!app.is_running());
        app.resume().unwrap();
        assert!(app.is_running());
    }

    #[test]
    fn illegal_transitions_error() {
        let mut sim = Sim::new(0);
        let app = Appliance::deploy(
            &mut sim,
            &image(),
            &link(),
            &DeploySpec::default_for("a"),
            |_, _| {},
        );
        // still deploying
        let err = app.suspend().unwrap_err();
        assert_eq!(err.state, ApplianceState::Deploying);
        sim.run();
        app.destroy().unwrap();
        assert!(app.suspend().is_err());
        assert!(app.resume().is_err());
        assert!(app.destroy().is_err());
        assert_eq!(app.state(), ApplianceState::Destroyed);
    }

    #[test]
    fn destroy_during_boot_wins_race() {
        let mut sim = Sim::new(0);
        let reached_running = Rc::new(Cell::new(false));
        let r2 = reached_running.clone();
        let app = Appliance::deploy(
            &mut sim,
            &image(),
            &link(),
            &DeploySpec::default_for("a"),
            move |_, _| r2.set(true),
        );
        let app2 = Rc::clone(&app);
        // destroy while booting (after copy ≈ 16s, before running ≈ 52s)
        sim.schedule(Duration::from_secs(30), move |_| {
            app2.destroy().unwrap();
        });
        sim.run();
        assert!(!reached_running.get());
        assert_eq!(app.state(), ApplianceState::Destroyed);
    }

    #[test]
    fn destroy_now_hard_kills_and_is_flagged() {
        let mut sim = Sim::new(0);
        let app = Appliance::deploy(
            &mut sim,
            &image(),
            &link(),
            &DeploySpec::default_for("a"),
            |_, _| {},
        );
        sim.run();
        assert!(app.is_running());
        assert!(!app.was_killed());
        app.destroy_now().unwrap();
        assert_eq!(app.state(), ApplianceState::Destroyed);
        assert!(app.was_killed());
        // already dead: a second kill (or drain-destroy) is an error
        assert!(app.destroy_now().is_err());
        assert!(app.destroy().is_err());
        // a drained destroy is never flagged as a kill
        let mut sim2 = Sim::new(0);
        let app2 = Appliance::deploy(
            &mut sim2,
            &image(),
            &link(),
            &DeploySpec::default_for("b"),
            |_, _| {},
        );
        sim2.run();
        app2.destroy().unwrap();
        assert!(!app2.was_killed());
    }

    #[test]
    fn end_to_end_build_then_deploy() {
        let mut sim = Sim::new(0);
        let builder = Host::new(&HostSpec::commodity("builder"));
        let repo = Link::new("repo", "mirror", "builder", GBIT_PER_S / 10.0, Duration::from_millis(10));
        let deploy_link = link();
        let running = Rc::new(Cell::new(false));
        let r2 = running.clone();
        build_image(
            &mut sim,
            &builder,
            &repo,
            &ApplianceRecipe::cyberaide_onserve(),
            move |sim, img| {
                let r3 = r2.clone();
                Appliance::deploy(
                    sim,
                    &img,
                    &deploy_link,
                    &DeploySpec::default_for("appliance"),
                    move |_, app| {
                        assert!(app.services().contains(&"onserve-portal".to_string()));
                        r3.set(true);
                    },
                );
            },
        );
        sim.run();
        assert!(running.get());
    }
}
