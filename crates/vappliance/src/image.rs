//! Building appliance images on demand.
//!
//! "The Cyberaide onServe virtual appliance is deployed on demand" (§I);
//! before that, the image must exist. [`build_image`] models the rBuilder
//! pipeline: fetch base + packages over a repository link, burn build CPU
//! on the builder host, write the image file.

use std::rc::Rc;

use simkit::{Host, Link, Sim};

use crate::recipe::ApplianceRecipe;

/// A built, deployable image.
#[derive(Clone, Debug, PartialEq)]
pub struct ApplianceImage {
    /// Appliance name (from the recipe).
    pub name: String,
    /// Image size in bytes.
    pub bytes: f64,
    /// Services the image starts at boot.
    pub boot_services: Vec<String>,
    /// Fingerprint of the recipe this image was built from.
    pub recipe_fingerprint: u64,
}

/// Build `recipe` on `builder`: download over `repo_link` (repository →
/// builder), compile/install, write the image. `done` receives the image.
pub fn build_image<F>(
    sim: &mut Sim,
    builder: &Rc<Host>,
    repo_link: &Rc<Link>,
    recipe: &ApplianceRecipe,
    done: F,
) where
    F: FnOnce(&mut Sim, ApplianceImage) + 'static,
{
    let image = ApplianceImage {
        name: recipe.name.clone(),
        bytes: recipe.image_bytes(),
        boot_services: recipe.boot_services.clone(),
        recipe_fingerprint: recipe.fingerprint(),
    };
    let downloads = recipe.download_bytes();
    let build_cpu = recipe.build_cpu_secs();
    let builder = Rc::clone(builder);
    repo_link.transfer(sim, downloads, move |sim| {
        let builder2 = Rc::clone(&builder);
        builder.compute(sim, build_cpu, move |sim| {
            let bytes = image.bytes;
            builder2.write_disk(sim, bytes, move |sim| {
                done(sim, image);
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{Duration, HostSpec, GBIT_PER_S, MB};
    use std::cell::Cell;

    fn setup() -> (Sim, Rc<Host>, Rc<Link>) {
        let sim = Sim::new(0);
        let builder = Host::new(&HostSpec::commodity("builder"));
        let repo = Link::new("repo", "repository", "builder", GBIT_PER_S / 10.0, Duration::from_millis(20));
        (sim, builder, repo)
    }

    #[test]
    fn build_produces_image_with_recipe_traits() {
        let (mut sim, builder, repo) = setup();
        let recipe = ApplianceRecipe::cyberaide_onserve();
        let got: Rc<Cell<Option<ApplianceImage>>> = Rc::new(Cell::new(None));
        let g = got.clone();
        build_image(&mut sim, &builder, &repo, &recipe, move |_, img| {
            g.set(Some(img));
        });
        sim.run();
        let img = got.take().expect("image built");
        assert_eq!(img.name, "cyberaide-onserve");
        assert_eq!(img.bytes, recipe.image_bytes());
        assert_eq!(img.recipe_fingerprint, recipe.fingerprint());
        assert!(img.boot_services.contains(&"tomcat".to_string()));
    }

    #[test]
    fn build_time_includes_fetch_compile_write() {
        let (mut sim, builder, repo) = setup();
        let recipe = ApplianceRecipe::cyberaide_onserve();
        let at = Rc::new(Cell::new(-1.0));
        let at2 = at.clone();
        build_image(&mut sim, &builder, &repo, &recipe, move |sim, _| {
            at2.set(sim.now().as_secs_f64());
        });
        sim.run();
        let fetch = recipe.download_bytes() / (GBIT_PER_S / 10.0);
        let write = recipe.image_bytes() / (35.0 * MB);
        let expect = fetch + 0.02 + recipe.build_cpu_secs() + write;
        assert!(
            (at.get() - expect).abs() < 1.0,
            "built at {}, expected ≈{expect}",
            at.get()
        );
    }

    #[test]
    fn build_records_builder_activity() {
        let (mut sim, builder, repo) = setup();
        build_image(
            &mut sim,
            &builder,
            &repo,
            &ApplianceRecipe::cyberaide_onserve(),
            |_, _| {},
        );
        sim.run();
        let r = sim.recorder_ref();
        // build work runs on one of four cores: utilization-seconds = work/4
        assert!(r.total("builder.cpu.busy") > 25.0);
        assert!(r.total("builder.disk.write.bytes") > 400.0 * MB);
        assert!(r.total("builder.net.in.bytes") > 300.0 * MB);
    }
}
