#![warn(missing_docs)]

//! # vappliance — the virtual-appliance substrate
//!
//! "The Cyberaide onServe is implemented as a virtual appliance which can
//! be built on-demand" (§I) — the paper builds it rBuilder-style (like
//! CERN VM, §II-A) and "users dynamically start Cyberaide virtual
//! appliance, which serves as an access layer for production Grids" (§V).
//! This crate provides that lifecycle:
//!
//! * [`recipe`] — appliance recipes: a base image plus software packages
//!   (Tomcat, Axis2, jUDDI, MySQL, the Cyberaide toolkit...).
//! * [`image`] — the build step: package fetch + build CPU + image write,
//!   producing a deployable [`image::ApplianceImage`].
//! * [`lifecycle`] — on-demand deployment: image copy, boot, a running
//!   [`simkit::Host`] for the appliance VM, suspend/resume/destroy with a
//!   checked state machine.

pub mod image;
pub mod lifecycle;
pub mod recipe;

pub use image::{build_image, ApplianceImage};
pub use lifecycle::{Appliance, ApplianceError, ApplianceState, DeploySpec};
pub use recipe::{ApplianceRecipe, Package};
