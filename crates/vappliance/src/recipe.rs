//! Appliance recipes: what goes into an image.
//!
//! A recipe is the rBuilder-style input: a minimal base plus the packages
//! the paper's appliance needs. "A software publisher can bundle the
//! necessary tools in an appliance and distribute it to users" (§II-A).

use simkit::host::MB;

/// One installable software package.
#[derive(Clone, Debug, PartialEq)]
pub struct Package {
    /// Package name.
    pub name: String,
    /// Download size in bytes.
    pub bytes: f64,
    /// Build/install CPU seconds on the builder host.
    pub build_cpu_secs: f64,
}

impl Package {
    /// Convenience constructor.
    pub fn new(name: &str, bytes: f64, build_cpu_secs: f64) -> Package {
        Package {
            name: name.to_owned(),
            bytes,
            build_cpu_secs,
        }
    }
}

/// A buildable appliance description.
#[derive(Clone, Debug, PartialEq)]
pub struct ApplianceRecipe {
    /// Appliance name.
    pub name: String,
    /// Size of the minimal base system in bytes.
    pub base_bytes: f64,
    /// Packages layered on the base.
    pub packages: Vec<Package>,
    /// Services the appliance starts at boot (checked by the deployment).
    pub boot_services: Vec<String>,
}

impl ApplianceRecipe {
    /// A recipe with just a base system.
    pub fn minimal(name: &str, base_bytes: f64) -> ApplianceRecipe {
        ApplianceRecipe {
            name: name.to_owned(),
            base_bytes,
            packages: Vec::new(),
            boot_services: Vec::new(),
        }
    }

    /// Builder: add a package.
    pub fn with_package(mut self, pkg: Package) -> ApplianceRecipe {
        self.packages.push(pkg);
        self
    }

    /// Builder: add a boot service.
    pub fn with_service(mut self, service: &str) -> ApplianceRecipe {
        self.boot_services.push(service.to_owned());
        self
    }

    /// The Cyberaide onServe appliance of the paper: servlet container,
    /// SOAP engine, UDDI registry, database, the Cyberaide toolkit and the
    /// onServe middleware on a minimal Linux base.
    pub fn cyberaide_onserve() -> ApplianceRecipe {
        ApplianceRecipe::minimal("cyberaide-onserve", 220.0 * MB)
            .with_package(Package::new("jre", 90.0 * MB, 20.0))
            .with_package(Package::new("tomcat", 12.0 * MB, 8.0))
            .with_package(Package::new("axis2", 18.0 * MB, 10.0))
            .with_package(Package::new("juddi", 9.0 * MB, 6.0))
            .with_package(Package::new("mysql", 45.0 * MB, 25.0))
            .with_package(Package::new("cog-kit", 25.0 * MB, 12.0))
            .with_package(Package::new("cyberaide-toolkit", 6.0 * MB, 9.0))
            .with_package(Package::new("onserve", 2.0 * MB, 5.0))
            .with_service("mysqld")
            .with_service("tomcat")
            .with_service("juddi")
            .with_service("cyberaide-agent")
            .with_service("onserve-portal")
    }

    /// Total bytes that must be fetched to build this image.
    pub fn download_bytes(&self) -> f64 {
        self.base_bytes + self.packages.iter().map(|p| p.bytes).sum::<f64>()
    }

    /// Total build CPU seconds.
    pub fn build_cpu_secs(&self) -> f64 {
        // base system assembly plus each package's build
        15.0 + self.packages.iter().map(|p| p.build_cpu_secs).sum::<f64>()
    }

    /// Resulting image size (installed footprint ≈ 1.6× the downloads,
    /// rBuilder images are filesystem images, not archives).
    pub fn image_bytes(&self) -> f64 {
        self.download_bytes() * 1.6
    }

    /// Content fingerprint (name + package list), used to dedupe builds.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |s: &str| {
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x1f;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(&self.name);
        for p in &self.packages {
            eat(&p.name);
        }
        for s in &self.boot_services {
            eat(s);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onserve_recipe_is_complete() {
        let r = ApplianceRecipe::cyberaide_onserve();
        let names: Vec<&str> = r.packages.iter().map(|p| p.name.as_str()).collect();
        for needed in ["tomcat", "axis2", "juddi", "mysql", "cyberaide-toolkit", "onserve"] {
            assert!(names.contains(&needed), "missing {needed}");
        }
        assert!(r.boot_services.contains(&"onserve-portal".to_string()));
        assert!(r.download_bytes() > 300.0 * MB);
        assert!(r.image_bytes() > r.download_bytes());
        assert!(r.build_cpu_secs() > 60.0);
    }

    #[test]
    fn builder_accumulates() {
        let r = ApplianceRecipe::minimal("m", 10.0)
            .with_package(Package::new("p", 5.0, 1.0))
            .with_service("s");
        assert_eq!(r.download_bytes(), 15.0);
        assert_eq!(r.packages.len(), 1);
        assert_eq!(r.boot_services, vec!["s".to_string()]);
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let a = ApplianceRecipe::cyberaide_onserve();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.packages.push(Package::new("extra", 1.0, 1.0));
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.name = "other".into();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
