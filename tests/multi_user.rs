//! Multi-tenant behaviour: "The access layer can be deployed locally by a
//! user, or deployed in a shared remote location and used by multiple
//! users" (§V). Several services, several concurrent consumers, and
//! concurrent portal uploads must all share the appliance's resources
//! without interference beyond queueing.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, Sim, SimTime, KB};
use wsstack::SoapValue;

fn publish_n(sim: &mut Sim, d: &Deployment, n: usize, profile: ExecutionProfile) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..n {
        let name = format!("svc{i}.exe");
        let req = d.upload_request(&name, 32 * 1024, profile, &[]);
        d.portal.upload(sim, req, |_, r| {
            r.expect("publish");
        });
        sim.run();
        names.push(format!("svc{i}"));
    }
    names
}

#[test]
fn ten_concurrent_consumers_all_complete() {
    let mut sim = Sim::new(30);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let names = publish_n(
        &mut sim,
        &d,
        10,
        ExecutionProfile::quick().producing(8.0 * KB),
    );
    let completed = Rc::new(Cell::new(0u32));
    for name in &names {
        let c = completed.clone();
        d.invoke(&mut sim, name, &[], move |_, r| {
            assert!(matches!(r, Ok(SoapValue::Binary { .. })), "{r:?}");
            c.set(c.get() + 1);
        });
    }
    sim.run();
    assert_eq!(completed.get(), 10);
    assert_eq!(d.onserve.counters(), (10, 0));
}

#[test]
fn concurrent_uploads_share_the_lan_and_all_publish() {
    let mut sim = Sim::new(31);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let n = 8;
    let published = Rc::new(Cell::new(0u32));
    let finish_times: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..n {
        let req = d.upload_request(
            &format!("u{i}.exe"),
            5 * 1024 * 1024,
            ExecutionProfile::quick(),
            &[],
        );
        let p = published.clone();
        let f = finish_times.clone();
        d.portal.upload(&mut sim, req, move |sim, r| {
            r.expect("publish");
            p.set(p.get() + 1);
            f.borrow_mut().push(sim.now().as_secs_f64());
        });
    }
    sim.run();
    assert_eq!(published.get(), n);
    assert_eq!(
        d.onserve.registry().borrow_mut().find("%").len(),
        n as usize
    );
    // all eight 5 MB files landed in the database
    assert_eq!(d.onserve.db().db().borrow().len(), n as usize);
}

#[test]
fn serial_uploads_are_faster_per_item_than_concurrent() {
    let run = |concurrent: bool| {
        let mut sim = Sim::new(32);
        let d = Deployment::build(&mut sim, &DeploymentSpec::default());
        let last_done = Rc::new(Cell::new(0.0));
        let n = 4;
        if concurrent {
            for i in 0..n {
                let req = d.upload_request(
                    &format!("c{i}.exe"),
                    20 * 1024 * 1024,
                    ExecutionProfile::quick(),
                    &[],
                );
                let l = last_done.clone();
                d.portal.upload(&mut sim, req, move |sim, r| {
                    r.expect("publish");
                    l.set(sim.now().as_secs_f64());
                });
            }
            sim.run();
        } else {
            for i in 0..n {
                let req = d.upload_request(
                    &format!("c{i}.exe"),
                    20 * 1024 * 1024,
                    ExecutionProfile::quick(),
                    &[],
                );
                let l = last_done.clone();
                d.portal.upload(&mut sim, req, move |sim, r| {
                    r.expect("publish");
                    l.set(sim.now().as_secs_f64());
                });
                sim.run();
            }
        }
        last_done.get()
    };
    let serial_makespan = run(false);
    let concurrent_makespan = run(true);
    // same total work: makespans are close; concurrency can't beat the
    // shared disk/CPU bottleneck by much, and queueing shouldn't explode it
    assert!(concurrent_makespan > 0.0 && serial_makespan > 0.0);
    assert!(
        concurrent_makespan < serial_makespan * 1.5,
        "concurrent {concurrent_makespan} vs serial {serial_makespan}"
    );
}

#[test]
fn mixed_workload_uploads_and_invocations_interleave() {
    let mut sim = Sim::new(33);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let names = publish_n(
        &mut sim,
        &d,
        3,
        ExecutionProfile::quick().producing(4.0 * KB),
    );
    let invoked = Rc::new(Cell::new(0u32));
    let uploaded = Rc::new(Cell::new(0u32));
    // three invocations start now...
    for name in &names {
        let c = invoked.clone();
        d.invoke(&mut sim, name, &[], move |_, r| {
            r.expect("invoke");
            c.set(c.get() + 1);
        });
    }
    // ...while two more uploads arrive mid-flight
    for i in 0..2 {
        let req = d.upload_request(
            &format!("late{i}.exe"),
            2 * 1024 * 1024,
            ExecutionProfile::quick(),
            &[],
        );
        let portal = Rc::clone(&d.portal);
        let u = uploaded.clone();
        sim.schedule(Duration::from_secs(5 + i), move |sim| {
            let u2 = u.clone();
            portal.upload(sim, req, move |_, r| {
                r.expect("late publish");
                u2.set(u2.get() + 1);
            });
        });
    }
    sim.run();
    assert_eq!(invoked.get(), 3);
    assert_eq!(uploaded.get(), 2);
    assert_eq!(d.onserve.registry().borrow_mut().find("%").len(), 5);
}

#[test]
fn grid_queue_contention_delays_but_does_not_fail() {
    // saturate the grid with background-like load submitted through the
    // middleware itself: more invocations than free cores on the pinned
    // site, all on a small site
    let mut sim = Sim::new(34);
    let spec = DeploymentSpec {
        config: onserve::OnServeConfig {
            broker: gridsim::BrokerPolicy::Fixed("ucanl".into()), // 16×4 cores
            ..onserve::OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    let req = d.upload_request(
        "wide.exe",
        16 * 1024,
        ExecutionProfile::quick()
            .on_cores(32)
            .lasting(Duration::from_secs(120))
            .producing(1.0 * KB),
        &[],
    );
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    // ucanl has 64 cores total; 4 × 32-core jobs → at most 2 run at once
    let done = Rc::new(Cell::new(0u32));
    let t0 = sim.now();
    for _ in 0..4 {
        let c = done.clone();
        d.invoke(&mut sim, "wide", &[], move |_, r| {
            r.expect("invoke");
            c.set(c.get() + 1);
        });
    }
    sim.run();
    assert_eq!(done.get(), 4);
    let elapsed = (sim.now() - t0).as_secs_f64();
    // two waves of 120 s jobs → well over 240 s wall, plus overheads
    assert!(elapsed > 240.0, "elapsed {elapsed}");
    let _ = SimTime::ZERO;
}
