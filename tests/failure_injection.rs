//! Failure injection across the stack: every layer's failure must surface
//! as a well-formed SOAP fault at the service consumer, with the
//! middleware's failure counter advancing — never a hang, never a lost
//! responder.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use gridsim::scheduler::ClusterScheduler;
use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use onserve::OnServeConfig;
use simkit::{Duration, Sim, KB};
use wsstack::{SoapFault, SoapValue};

fn publish(sim: &mut Sim, d: &Deployment, name: &str, profile: ExecutionProfile) {
    let req = d.upload_request(name, 16 * 1024, profile, &[]);
    d.portal.upload(sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
}

fn invoke_expect_fault(sim: &mut Sim, d: &Deployment, service: &str) -> SoapFault {
    let fault: Rc<RefCell<Option<SoapFault>>> = Rc::new(RefCell::new(None));
    let f2 = fault.clone();
    d.invoke(sim, service, &[], move |_, r| {
        *f2.borrow_mut() = Some(r.expect_err("should fault"));
    });
    sim.run();
    let f = fault.borrow_mut().take().expect("fault delivered");
    f
}

#[test]
fn wrong_myproxy_passphrase_fails_authentication() {
    let mut sim = Sim::new(21);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    // publish with a *wrong* passphrase recorded in the service metadata;
    // the MyProxy exchange at invocation time must reject it
    let mut req = d.upload_request("app.exe", 8192, ExecutionProfile::quick(), &[]);
    req.grid_passphrase = "wrong".into();
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    let fault = invoke_expect_fault(&mut sim, &d, "app");
    assert_eq!(fault.code, "soap:Server");
    assert!(fault.message.contains("passphrase"), "{fault}");
    assert_eq!(d.onserve.counters(), (1, 1));
}

#[test]
fn all_gatekeepers_down_surfaces_unavailable() {
    let mut sim = Sim::new(22);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    publish(&mut sim, &d, "app.exe", ExecutionProfile::quick());
    for site in d.grid.sites() {
        site.gatekeeper().borrow_mut().set_accepting(false);
    }
    let fault = invoke_expect_fault(&mut sim, &d, "app");
    assert_eq!(fault.code, "soap:Server");
    assert!(fault.message.contains("unavailable"), "{fault}");
}

#[test]
fn node_failure_mid_job_reports_job_failure() {
    let mut sim = Sim::new(23);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            broker: gridsim::BrokerPolicy::Fixed("lsu".into()),
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    publish(
        &mut sim,
        &d,
        "app.exe",
        ExecutionProfile::quick().lasting(Duration::from_secs(3600)),
    );
    let fault: Rc<RefCell<Option<SoapFault>>> = Rc::new(RefCell::new(None));
    let f2 = fault.clone();
    d.invoke(&mut sim, "app", &[], move |_, r| {
        *f2.borrow_mut() = Some(r.expect_err("should fault"));
    });
    // kill every node of the pinned site while the job runs
    let site = Rc::clone(d.grid.site("lsu").unwrap());
    let n_nodes = site.spec().nodes;
    let sched = Rc::clone(site.scheduler());
    sim.schedule(Duration::from_secs(120), move |sim| {
        for node in 0..n_nodes {
            ClusterScheduler::fail_node(&sched, sim, node);
        }
    });
    sim.run();
    let fault = fault.borrow_mut().take().expect("fault delivered");
    assert!(fault.message.contains("NodeFailure"), "{fault}");
}

#[test]
fn corrupt_database_blob_faults_before_grid_traffic() {
    let mut sim = Sim::new(24);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    publish(&mut sim, &d, "app.exe", ExecutionProfile::quick());
    d.onserve
        .db()
        .db()
        .borrow_mut()
        .corrupt_blob("app.exe")
        .unwrap();
    let fault = invoke_expect_fault(&mut sim, &d, "app");
    assert!(fault.message.contains("corrupt"), "{fault}");
}

#[test]
fn watchdog_kills_runaway_invocation() {
    let mut sim = Sim::new(25);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            invocation_timeout: Duration::from_secs(120),
            poll_timeout: Duration::from_secs(12 * 3600),
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    publish(
        &mut sim,
        &d,
        "runaway.exe",
        ExecutionProfile::quick().lasting(Duration::from_secs(6 * 3600)),
    );
    let fault = invoke_expect_fault(&mut sim, &d, "runaway");
    assert!(fault.message.contains("watchdog"), "{fault}");
    // exactly one response despite the poller continuing/failing later
    assert_eq!(d.onserve.counters().1, 1);
}

#[test]
fn watchdog_timeout_marks_invocation_span_failed() {
    // same runaway scenario as above, but with telemetry on: the span
    // tree must show the invocation root failed with the watchdog's
    // timeout attributes, while the grid stages still nest under it
    let mut sim = Sim::new(25);
    sim.enable_telemetry();
    let spec = DeploymentSpec {
        config: OnServeConfig {
            invocation_timeout: Duration::from_secs(120),
            poll_timeout: Duration::from_secs(12 * 3600),
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    publish(
        &mut sim,
        &d,
        "runaway.exe",
        ExecutionProfile::quick().lasting(Duration::from_secs(6 * 3600)),
    );
    let fault = invoke_expect_fault(&mut sim, &d, "runaway");
    assert!(fault.message.contains("watchdog"), "{fault}");

    let t = sim.telemetry().expect("telemetry on");
    let root = *t
        .spans_named("onserve.invoke")
        .first()
        .expect("onserve.invoke span recorded");
    let rec = t.span(root).expect("root record");
    assert!(rec.failed, "invocation root must be marked failed");
    assert!(rec.end.is_some(), "invocation root must be closed");
    assert_eq!(
        rec.attr("error").map(ToString::to_string).as_deref(),
        Some("watchdog_timeout")
    );
    assert_eq!(
        rec.attr("timeout_secs").map(ToString::to_string).as_deref(),
        Some("120")
    );
    assert!(
        t.spans_named("agent.submit")
            .into_iter()
            .any(|id| t.is_descendant(id, root)),
        "grid stages must nest under the failed invocation root"
    );
}

#[test]
fn poll_timeout_reports_grid_error() {
    let mut sim = Sim::new(26);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            poll_timeout: Duration::from_secs(60),
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    publish(
        &mut sim,
        &d,
        "slow.exe",
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(3600))
            .producing(0.0),
    );
    let fault = invoke_expect_fault(&mut sim, &d, "slow");
    assert!(fault.message.contains("polling timed out"), "{fault}");
}

#[test]
fn walltime_exceeded_job_reports_failure_to_consumer() {
    let mut sim = Sim::new(27);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    // jitterless profile whose true runtime blows its own walltime:
    // walltime_factor < 1 means the estimate is too tight
    let profile = ExecutionProfile {
        runtime: Duration::from_secs(300),
        runtime_jitter: 0.0,
        cores: 1,
        output_bytes: 1.0 * KB,
        walltime_factor: 0.5,
    };
    publish(&mut sim, &d, "tight.exe", profile);
    let fault = invoke_expect_fault(&mut sim, &d, "tight");
    assert!(fault.message.contains("WalltimeExceeded"), "{fault}");
}

#[test]
fn failures_do_not_poison_subsequent_invocations() {
    let mut sim = Sim::new(28);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    publish(
        &mut sim,
        &d,
        "app.exe",
        ExecutionProfile::quick().producing(2.0 * KB),
    );
    // 1: fail via corrupt blob
    d.onserve
        .db()
        .db()
        .borrow_mut()
        .corrupt_blob("app.exe")
        .unwrap();
    let _ = invoke_expect_fault(&mut sim, &d, "app");
    // 2: repair by re-uploading under a new name and invoking successfully
    publish(
        &mut sim,
        &d,
        "app2.exe",
        ExecutionProfile::quick().producing(2.0 * KB),
    );
    let ok = Rc::new(Cell::new(false));
    let o2 = ok.clone();
    d.invoke(&mut sim, "app2", &[], move |_, r| {
        assert!(matches!(r, Ok(SoapValue::Binary { .. })));
        o2.set(true);
    });
    sim.run();
    assert!(ok.get());
    assert_eq!(d.onserve.counters(), (2, 1));
}

#[test]
fn retry_extension_survives_node_failure_by_moving_sites() {
    let mut sim = Sim::new(29);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            job_retries: 2,
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    publish(
        &mut sim,
        &d,
        "app.exe",
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(600))
            .producing(4.0 * KB),
    );
    let got: Rc<RefCell<Option<Result<SoapValue, SoapFault>>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    d.invoke(&mut sim, "app", &[], move |_, r| {
        *g.borrow_mut() = Some(r);
    });
    // after the job starts (staging ≈ 17 s for 16 KB + auth), find where it
    // runs and kill that whole site
    let grid = Rc::clone(&d.grid);
    sim.schedule(Duration::from_secs(120), move |sim| {
        for site in grid.sites() {
            if site.scheduler().borrow().running_count() > 0 {
                let n = site.spec().nodes;
                let sched = Rc::clone(site.scheduler());
                for node in 0..n {
                    ClusterScheduler::fail_node(&sched, sim, node);
                }
                break;
            }
        }
    });
    sim.run();
    let result = got.borrow_mut().take().expect("responded");
    assert!(
        matches!(result, Ok(SoapValue::Binary { .. })),
        "retry should succeed elsewhere: {result:?}"
    );
    assert_eq!(d.onserve.counters(), (1, 0));
    // two different sites did work
    let active_sites = d
        .grid
        .sites()
        .iter()
        .filter(|s| {
            sim.recorder_ref()
                .total(&format!("{}.core_seconds", s.name()))
                > 0.0
        })
        .count();
    assert!(active_sites >= 2, "job must have moved ({active_sites} sites active)");
}

#[test]
fn retry_extension_walks_past_unavailable_gatekeepers() {
    let mut sim = Sim::new(30);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            job_retries: 10,
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    publish(&mut sim, &d, "app.exe", ExecutionProfile::quick().producing(1.0 * KB));
    // all but one gatekeeper down
    for site in d.grid.sites() {
        if site.name() != "lsu" {
            site.gatekeeper().borrow_mut().set_accepting(false);
        }
    }
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    d.invoke(&mut sim, "app", &[], move |_, r| {
        o.set(r.is_ok());
    });
    sim.run();
    assert!(ok.get(), "should eventually land on the one live site");
    assert!(sim.recorder_ref().total("lsu.core_seconds") > 0.0);
}

#[test]
fn zero_retries_is_the_paper_behaviour() {
    // identical outage, default config: the first Unavailable is final
    let mut sim = Sim::new(31);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    publish(&mut sim, &d, "app.exe", ExecutionProfile::quick());
    for site in d.grid.sites() {
        if site.name() != "lsu" {
            site.gatekeeper().borrow_mut().set_accepting(false);
        }
    }
    // MostFreeCores picks the biggest (down) site first ⇒ fault
    let fault = invoke_expect_fault(&mut sim, &d, "app");
    assert!(fault.message.contains("unavailable"), "{fault}");
}
