//! End-to-end integration: the two usage scenarios of §VII, driven through
//! the public API exactly as the examples do — portal upload → service
//! generation → UDDI publication → discovery → stub invocation → Grid
//! execution → output back as the SOAP response.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use onserve::{OnServeConfig, PublishedService};
use simkit::{Duration, Sim, SimTime, KB};
use wsstack::{ClientStub, SoapValue};

fn upload_and_publish(
    sim: &mut Sim,
    d: &Deployment,
    name: &str,
    len: usize,
    profile: ExecutionProfile,
    params: &[(&str, &str)],
) -> PublishedService {
    let req = d.upload_request(name, len, profile, params);
    let out: Rc<RefCell<Option<PublishedService>>> = Rc::new(RefCell::new(None));
    let o2 = out.clone();
    d.portal.upload(sim, req, move |_, r| {
        *o2.borrow_mut() = Some(r.expect("publish"));
    });
    sim.run();
    let svc = out.borrow_mut().take().expect("published");
    svc
}

#[test]
fn scenario_a_upload_generates_and_publishes() {
    let mut sim = Sim::new(1);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let svc = upload_and_publish(
        &mut sim,
        &d,
        "blast.exe",
        256 * 1024,
        ExecutionProfile::quick(),
        &[("sequence", "string"), ("evalue", "double")],
    );
    assert_eq!(svc.service_name, "blast");
    assert!(svc.endpoint.contains("/services/blast"));
    // WSDL parses into a usable stub with the declared signature
    let stub = ClientStub::from_wsdl_text(&svc.wsdl_text).expect("wsimport");
    assert_eq!(stub.operations().collect::<Vec<_>>(), vec!["execute"]);
    // published in the registry with a resolvable binding
    let mut reg = d.onserve.registry().borrow_mut();
    let hits = reg.find("blast");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].bindings[0].access_point, svc.endpoint);
    drop(reg);
    // executable stored in the database (compressed)
    let db = d.onserve.db().db().borrow();
    let rec = db.record("blast.exe").expect("stored");
    assert_eq!(rec.original_len, 256 * 1024);
    assert!(rec.stored_len < rec.original_len);
}

#[test]
fn scenario_b_invocation_executes_on_grid_and_returns_output() {
    let mut sim = Sim::new(2);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let profile = ExecutionProfile::quick().producing(48.0 * KB);
    upload_and_publish(&mut sim, &d, "hello.exe", 8 * 1024, profile, &[("n", "int")]);
    let got: Rc<RefCell<Option<Result<SoapValue, wsstack::SoapFault>>>> =
        Rc::new(RefCell::new(None));
    let g = got.clone();
    d.invoke(&mut sim, "hello", &[("n", SoapValue::Int(7))], move |_, r| {
        *g.borrow_mut() = Some(r);
    });
    sim.run();
    let result = got.borrow_mut().take().expect("responded").expect("ok");
    match result {
        SoapValue::Binary { bytes, .. } => {
            assert!((bytes - 48.0 * KB).abs() < 1.0, "output bytes {bytes}")
        }
        other => panic!("expected binary output, got {other:?}"),
    }
    let (inv, failures) = d.onserve.counters();
    assert_eq!((inv, failures), (1, 0));
    // the job really ran on a grid site
    let total_grid_cores: f64 = d
        .grid
        .sites()
        .iter()
        .map(|s| {
            sim.recorder_ref()
                .total(&format!("{}.core_seconds", s.name()))
        })
        .sum();
    assert!(total_grid_cores >= 29.0, "core-seconds {total_grid_cores}");
    // credential traffic, staging traffic and polling spools all visible
    let r = sim.recorder_ref();
    assert!(r.total("appliance.net.out.bytes") > 8.0 * 1024.0);
    assert!(r.total("appliance.net.in.bytes") > 48.0 * KB);
    assert!(r.total("appliance.disk.write.bytes") > 48.0 * KB);
}

#[test]
fn second_invocation_restages_by_default_paper_behaviour() {
    let mut sim = Sim::new(3);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let exe_len = 1024 * 1024;
    upload_and_publish(
        &mut sim,
        &d,
        "tool.exe",
        exe_len,
        ExecutionProfile::quick().producing(1.0 * KB),
        &[],
    );
    let run_once = |sim: &mut Sim, d: &Deployment| {
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        d.invoke(sim, "tool", &[], move |_, r| {
            r.expect("invoke");
            o.set(true);
        });
        sim.run();
        assert!(ok.get());
    };
    run_once(&mut sim, &d);
    let staged_once = sim.recorder_ref().total("appliance.net.out.bytes");
    run_once(&mut sim, &d);
    let staged_twice = sim.recorder_ref().total("appliance.net.out.bytes");
    // "Large files ... will even be reloaded when executed a 2nd time":
    // the second run ships the megabyte again
    assert!(
        staged_twice - staged_once >= exe_len as f64,
        "second run only sent {} extra bytes",
        staged_twice - staged_once
    );
}

#[test]
fn reuse_staged_ablation_skips_second_upload() {
    let mut sim = Sim::new(4);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            reuse_staged_files: true,
            // pin the broker so the cached site is chosen again
            broker: gridsim::BrokerPolicy::Fixed("tacc".into()),
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    let exe_len = 1024 * 1024;
    upload_and_publish(
        &mut sim,
        &d,
        "tool.exe",
        exe_len,
        ExecutionProfile::quick().producing(1.0 * KB),
        &[],
    );
    let run_once = |sim: &mut Sim, d: &Deployment| {
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        d.invoke(sim, "tool", &[], move |_, r| {
            r.expect("invoke");
            o.set(true);
        });
        sim.run();
        assert!(ok.get());
    };
    run_once(&mut sim, &d);
    let after_first = sim.recorder_ref().total("appliance.net.out.bytes");
    run_once(&mut sim, &d);
    let after_second = sim.recorder_ref().total("appliance.net.out.bytes");
    // only control traffic on the second run — no megabyte re-upload
    assert!(
        after_second - after_first < 0.2 * exe_len as f64,
        "reuse still sent {} bytes",
        after_second - after_first
    );
}

#[test]
fn multiple_services_coexist_and_route_to_their_executables() {
    let mut sim = Sim::new(5);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    upload_and_publish(
        &mut sim,
        &d,
        "alpha.exe",
        4096,
        ExecutionProfile::quick().producing(111.0),
        &[],
    );
    upload_and_publish(
        &mut sim,
        &d,
        "beta.exe",
        4096,
        ExecutionProfile::quick().producing(222.0),
        &[],
    );
    assert_eq!(d.onserve.registry().borrow_mut().find("%").len(), 2);
    let sizes: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    for name in ["alpha", "beta"] {
        let s = sizes.clone();
        d.invoke(&mut sim, name, &[], move |_, r| {
            if let Ok(SoapValue::Binary { bytes, .. }) = r {
                s.borrow_mut().push(bytes);
            }
        });
    }
    sim.run();
    let mut got = sizes.borrow().clone();
    got.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(got, vec![111.0, 222.0]);
}

#[test]
fn invoking_with_wrong_arguments_faults_without_grid_traffic() {
    let mut sim = Sim::new(6);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    upload_and_publish(
        &mut sim,
        &d,
        "typed.exe",
        4096,
        ExecutionProfile::quick(),
        &[("count", "int")],
    );
    let wan_before: f64 = d
        .grid
        .sites()
        .iter()
        .map(|s| {
            sim.recorder_ref()
                .total(&format!("{}.net.in.bytes", s.name()))
        })
        .sum();
    let fault = Rc::new(RefCell::new(None));
    let f2 = fault.clone();
    d.invoke(
        &mut sim,
        "typed",
        &[("count", SoapValue::Str("three".into()))],
        move |_, r| {
            *f2.borrow_mut() = Some(r.unwrap_err());
        },
    );
    sim.run();
    let fault = fault.borrow_mut().take().expect("fault");
    assert_eq!(fault.code, "soap:Client");
    let wan_after: f64 = d
        .grid
        .sites()
        .iter()
        .map(|s| {
            sim.recorder_ref()
                .total(&format!("{}.net.in.bytes", s.name()))
        })
        .sum();
    assert_eq!(wan_before, wan_after, "no grid traffic for rejected args");
}

#[test]
fn duplicate_upload_name_is_rejected() {
    let mut sim = Sim::new(7);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    upload_and_publish(&mut sim, &d, "same.exe", 4096, ExecutionProfile::quick(), &[]);
    let err = Rc::new(RefCell::new(None));
    let e2 = err.clone();
    let req = d.upload_request("same.exe", 4096, ExecutionProfile::quick(), &[]);
    d.portal.upload(&mut sim, req, move |_, r| {
        *e2.borrow_mut() = Some(r.unwrap_err());
    });
    sim.run();
    assert!(matches!(
        err.borrow_mut().take(),
        Some(onserve::onserve::UploadError::Db(_))
    ));
}

#[test]
fn removed_service_disappears_everywhere() {
    let mut sim = Sim::new(8);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    upload_and_publish(&mut sim, &d, "gone.exe", 4096, ExecutionProfile::quick(), &[]);
    assert!(d.onserve.remove_service("gone"));
    assert!(!d.onserve.remove_service("gone"));
    assert_eq!(d.onserve.registry().borrow_mut().find("gone").len(), 0);
    assert!(d.onserve.client_for("gone").is_err());
    assert!(d.onserve.db().db().borrow().record("gone.exe").is_err());
    // invoking the removed service faults
    let fault = Rc::new(Cell::new(false));
    let f2 = fault.clone();
    d.invoke(&mut sim, "gone", &[], move |_, r| {
        f2.set(r.is_err());
    });
    sim.run();
    assert!(fault.get());
}

#[test]
fn invocation_timing_is_dominated_by_job_runtime_not_middleware() {
    // the §VIII-B claim: onServe overhead is small next to a typical
    // Grid job runtime
    let mut sim = Sim::new(9);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let runtime = Duration::from_secs(600);
    upload_and_publish(
        &mut sim,
        &d,
        "long.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(runtime)
            .producing(4.0 * KB),
        &[],
    );
    let t0 = sim.now();
    let done_at = Rc::new(Cell::new(SimTime::ZERO));
    let da = done_at.clone();
    d.invoke(&mut sim, "long", &[], move |sim, r| {
        r.expect("invoke");
        da.set(sim.now());
    });
    sim.run();
    let total = (done_at.get() - t0).as_secs_f64();
    let overhead = total - runtime.as_secs_f64();
    assert!(overhead > 0.0);
    assert!(
        overhead < 0.2 * runtime.as_secs_f64(),
        "overhead {overhead}s on a {}s job",
        runtime.as_secs_f64()
    );
}

#[test]
fn five_megabyte_executable_stages_in_about_a_minute_over_wan() {
    // Figure 7's headline: ~5 MB to the Grid node takes ~60 s at 80–90 KB/s
    let mut sim = Sim::new(10);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    upload_and_publish(
        &mut sim,
        &d,
        "big.exe",
        5 * 1024 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(30))
            .producing(1.0 * KB),
        &[],
    );
    let t0 = sim.now();
    let done_at = Rc::new(Cell::new(SimTime::ZERO));
    let da = done_at.clone();
    d.invoke(&mut sim, "big", &[], move |sim, r| {
        r.expect("invoke");
        da.set(sim.now());
    });
    sim.run();
    let total = (done_at.get() - t0).as_secs_f64();
    // staging ≈ 60 s + job 30 s + polling/auth/middleware
    assert!(total > 90.0, "total {total}");
    assert!(total < 140.0, "total {total}");
}

#[test]
fn session_cache_ablation_skips_repeat_credential_exchange() {
    let mut sim = Sim::new(11);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            cache_grid_sessions: true,
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    upload_and_publish(
        &mut sim,
        &d,
        "cached.exe",
        8192,
        ExecutionProfile::quick().producing(1.0 * KB),
        &[],
    );
    let run_once = |sim: &mut Sim, d: &Deployment| {
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        d.invoke(sim, "cached", &[], move |_, r| {
            r.expect("invoke");
            o.set(true);
        });
        sim.run();
        assert!(ok.get());
    };
    run_once(&mut sim, &d);
    let cred_after_first =
        sim.recorder_ref().total("mp.fwd.bytes") + sim.recorder_ref().total("mp.rev.bytes");
    run_once(&mut sim, &d);
    run_once(&mut sim, &d);
    let cred_after_third =
        sim.recorder_ref().total("mp.fwd.bytes") + sim.recorder_ref().total("mp.rev.bytes");
    // no further MyProxy traffic once the session is cached
    assert_eq!(cred_after_first, cred_after_third);

    // the paper's default re-authenticates every time
    let mut sim2 = Sim::new(12);
    let d2 = Deployment::build(&mut sim2, &DeploymentSpec::default());
    upload_and_publish(
        &mut sim2,
        &d2,
        "uncached.exe",
        8192,
        ExecutionProfile::quick().producing(1.0 * KB),
        &[],
    );
    let run2 = |sim: &mut Sim, d: &Deployment| {
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        d.invoke(sim, "uncached", &[], move |_, r| {
            r.expect("invoke");
            o.set(true);
        });
        sim.run();
        assert!(ok.get());
    };
    run2(&mut sim2, &d2);
    let c1 = sim2.recorder_ref().total("mp.fwd.bytes") + sim2.recorder_ref().total("mp.rev.bytes");
    run2(&mut sim2, &d2);
    let c2 = sim2.recorder_ref().total("mp.fwd.bytes") + sim2.recorder_ref().total("mp.rev.bytes");
    assert!(c2 > c1, "paper behaviour must re-exchange credentials");
}

#[test]
fn update_executable_replaces_in_place_and_invalidates_staging() {
    let mut sim = Sim::new(13);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            reuse_staged_files: true,
            broker: gridsim::BrokerPolicy::Fixed("sdsc".into()),
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    let svc = upload_and_publish(
        &mut sim,
        &d,
        "tool.exe",
        512 * 1024,
        ExecutionProfile::quick().producing(100.0),
        &[("n", "int")],
    );
    // run once to warm the staged cache
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    d.invoke(&mut sim, "tool", &[("n", SoapValue::Int(1))], move |_, r| {
        r.expect("invoke");
        o.set(true);
    });
    sim.run();
    assert!(ok.get());
    let staged_before = sim.recorder_ref().total("sdsc.net.in.bytes");

    // update: bigger binary, new signature, new profile
    let new_len = 1024 * 1024;
    let updated = Rc::new(Cell::new(false));
    let u = updated.clone();
    d.onserve.clone().update_executable(
        &mut sim,
        "tool",
        onserve::deployment::synth_payload(new_len, 99),
        Some(vec![
            blobstore::ParamSpec::new("n", "int"),
            blobstore::ParamSpec::new("mode", "string"),
        ]),
        Some("version 2".into()),
        Some(ExecutionProfile::quick().producing(222.0)),
        move |_, r| {
            r.expect("update");
            u.set(true);
        },
    );
    sim.run();
    assert!(updated.get());
    // same UDDI key, new description; WSDL now has two parameters
    let key = svc.service_key.clone();
    {
        let mut reg = d.onserve.registry().borrow_mut();
        let rec = reg.get(&key).unwrap();
        assert_eq!(rec.description, "version 2");
    }
    let stub = d.onserve.client_for("tool").unwrap();
    let two_args = stub.build_request(
        "execute",
        &[("n", SoapValue::Int(1)), ("mode", SoapValue::Str("x".into()))],
    );
    assert!(two_args.is_ok());
    // invoking with the old single-arg shape now faults
    let fault = Rc::new(Cell::new(false));
    let f = fault.clone();
    d.invoke(&mut sim, "tool", &[("n", SoapValue::Int(1))], move |_, r| {
        f.set(r.is_err());
    });
    sim.run();
    assert!(fault.get());
    // a correct invocation re-stages the NEW binary despite the reuse cache
    let out = Rc::new(Cell::new(0.0));
    let o2 = out.clone();
    d.invoke(
        &mut sim,
        "tool",
        &[("n", SoapValue::Int(1)), ("mode", SoapValue::Str("x".into()))],
        move |_, r| {
            if let Ok(SoapValue::Binary { bytes, .. }) = r {
                o2.set(bytes);
            }
        },
    );
    sim.run();
    assert_eq!(out.get(), 222.0, "new profile's output");
    let staged_after = sim.recorder_ref().total("sdsc.net.in.bytes");
    assert!(
        staged_after - staged_before >= new_len as f64,
        "update must invalidate the staged copy (delta {})",
        staged_after - staged_before
    );
}

#[test]
fn update_unknown_service_errors() {
    let mut sim = Sim::new(14);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let hit = Rc::new(Cell::new(false));
    let h = hit.clone();
    d.onserve.clone().update_executable(
        &mut sim,
        "ghost",
        onserve::deployment::synth_payload(10, 1),
        None,
        None,
        None,
        move |_, r| {
            assert!(matches!(r, Err(onserve::UploadError::NoSuchService(_))));
            h.set(true);
        },
    );
    sim.run();
    assert!(hit.get());
}

#[test]
fn registry_browser_reflects_live_state() {
    let mut sim = Sim::new(15);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    upload_and_publish(
        &mut sim,
        &d,
        "viewer.exe",
        4096,
        ExecutionProfile::quick(),
        &[("depth", "int")],
    );
    let cat = onserve::browser::catalog(&d.onserve);
    assert!(cat.contains("viewer"), "{cat}");
    assert!(cat.contains("execute(depth: int) -> base64"), "{cat}");
    let det = onserve::browser::describe(&d.onserve, "view%");
    assert!(det.contains("wsdl:definitions"), "{det}");
}

#[test]
fn exhausted_allocation_surfaces_at_the_service_consumer() {
    let mut sim = Sim::new(16);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    // a tenant with a 1-SU budget at every site
    d.enroll_tenant(&sim, "smalllab", "pw", Some(1.0));
    let mut req = d.upload_request(
        "burn.exe",
        8192,
        // walltime limit = 4 × 600 s × 8 cores projects to 5.3 SU — over
        // budget on every site
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(600))
            .on_cores(8)
            .producing(1.0 * KB),
        &[],
    );
    req.grid_user = "smalllab".into();
    req.grid_passphrase = "pw".into();
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    let fault = Rc::new(RefCell::new(None));
    let f = fault.clone();
    d.invoke(&mut sim, "burn", &[], move |_, r| {
        *f.borrow_mut() = Some(r.expect_err("over-budget job must fault"));
    });
    sim.run();
    let fault = fault.borrow_mut().take().unwrap();
    assert!(fault.message.contains("allocation exhausted"), "{fault}");
    // usage stayed zero: nothing ran
    assert!(d
        .grid
        .usage_report()
        .iter()
        .all(|(_, _, a)| a.used_core_hours == 0.0));
}

#[test]
fn expired_cached_sessions_are_evicted_and_logged_out() {
    // Regression: the session cache used to drop expired SessionIds without
    // telling the agent, leaking one dead proxy entry in the agent's session
    // map per expiry. With a 60 s proxy lifetime every invoke finds the
    // previous session stale (the cache demands 600 s of remaining life), so
    // each round exercises the evict-and-logout path once.
    let mut sim = Sim::new(14);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            cache_grid_sessions: true,
            ..OnServeConfig::default()
        },
        agent: cyberaide::agent::AgentConfig {
            proxy_lifetime: Duration::from_secs(60),
            ..cyberaide::agent::AgentConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    upload_and_publish(
        &mut sim,
        &d,
        "leaky.exe",
        8192,
        ExecutionProfile::quick().producing(1.0 * KB),
        &[],
    );
    const ROUNDS: u64 = 8;
    for _ in 0..ROUNDS {
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        d.invoke(&mut sim, "leaky", &[], move |_, r| {
            r.expect("invoke");
            o.set(true);
        });
        sim.run();
        assert!(ok.get());
        assert!(
            d.agent.session_count() <= 1,
            "agent session map must stay bounded, got {}",
            d.agent.session_count()
        );
    }
    let (auths, hits, evictions) = d.onserve.session_counters();
    // every round re-authenticated (the cached session is always stale) and
    // every stale entry after the first was evicted *and* logged out
    assert_eq!(auths, ROUNDS);
    assert_eq!(hits, 0);
    assert_eq!(evictions, ROUNDS - 1);
    assert!(d.agent.session_count() <= 1);
}
