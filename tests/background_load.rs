//! The full SaaS stack under realistic Grid contention: background
//! workloads keep the chosen site's batch queue busy while service
//! invocations arrive. The paper's overhead story lives or dies on queue
//! wait, so these tests pin down how contention shows up at the SOAP
//! consumer — slower, but never lost.

use std::cell::Cell;
use std::rc::Rc;

use gridsim::BackgroundLoad;
use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use onserve::OnServeConfig;
use simkit::{Duration, Sim, SimTime, KB};

fn deploy_pinned(sim: &mut Sim, site: &str) -> Deployment {
    let spec = DeploymentSpec {
        config: OnServeConfig {
            broker: gridsim::BrokerPolicy::Fixed(site.into()),
            // generous polling budget: queue wait counts against it
            poll_timeout: Duration::from_secs(48 * 3600),
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    Deployment::build(sim, &spec)
}

fn publish_and_time_one(sim: &mut Sim, d: &Deployment) -> f64 {
    let done_at = Rc::new(Cell::new(-1.0));
    let da = done_at.clone();
    let t0 = sim.now();
    d.invoke(sim, "probe", &[], move |sim, r| {
        r.expect("invoke");
        da.set(sim.now().as_secs_f64());
    });
    sim.run();
    assert!(done_at.get() >= 0.0);
    done_at.get() - t0.as_secs_f64()
}

#[test]
fn contention_slows_but_never_loses_invocations() {
    // quiet baseline
    let mut quiet = Sim::new(60);
    let dq = deploy_pinned(&mut quiet, "ucanl");
    let req = dq.upload_request(
        "probe.exe",
        16 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(60))
            .on_cores(4)
            .producing(2.0 * KB),
        &[],
    );
    dq.portal.upload(&mut quiet, req, |_, r| {
        r.expect("publish");
    });
    quiet.run();
    let quiet_latency = publish_and_time_one(&mut quiet, &dq);

    // loaded: heavy background stream on the same (small) site
    let mut busy = Sim::new(60);
    let db = deploy_pinned(&mut busy, "ucanl");
    let req = db.upload_request(
        "probe.exe",
        16 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(60))
            .on_cores(4)
            .producing(2.0 * KB),
        &[],
    );
    db.portal.upload(&mut busy, req, |_, r| {
        r.expect("publish");
    });
    busy.run();
    let site = Rc::clone(db.grid.site("ucanl").unwrap());
    // wide, long background jobs: the 64-core site is saturated with no
    // backfill holes a 4-core probe could slip into
    BackgroundLoad {
        mean_interarrival: Duration::from_secs(10),
        min_runtime: Duration::from_secs(600),
        max_runtime: Duration::from_secs(4 * 3600),
        alpha: 1.5,
        max_cores: 64,
        horizon: busy.now() + Duration::from_secs(4 * 3600),
    }
    .start(&mut busy, &site);
    // let the queue build up
    let warm = busy.now() + Duration::from_secs(1800);
    busy.run_until(warm);
    let busy_latency = publish_and_time_one(&mut busy, &db);

    assert!(
        busy_latency > quiet_latency,
        "contention must add queue wait: quiet {quiet_latency}s vs busy {busy_latency}s"
    );
    assert_eq!(db.onserve.counters().1, 0, "no failures under contention");
}

#[test]
fn broker_routes_around_a_loaded_site() {
    let mut sim = Sim::new(61);
    // ShortestWait broker instead of a pinned site
    let spec = DeploymentSpec {
        config: OnServeConfig {
            broker: gridsim::BrokerPolicy::ShortestWait,
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    let req = d.upload_request(
        "probe.exe",
        16 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(30))
            .producing(1.0 * KB),
        &[],
    );
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    // saturate a couple of sites with background work
    for name in ["ncsa", "tacc"] {
        let site = Rc::clone(d.grid.site(name).unwrap());
        BackgroundLoad::heavy(sim.now() + Duration::from_secs(2 * 3600)).start(&mut sim, &site);
    }
    let warm = sim.now() + Duration::from_secs(900);
    sim.run_until(warm);
    // the probe must land on an unloaded site and finish promptly
    let latency = publish_and_time_one(&mut sim, &d);
    assert!(
        latency < 120.0,
        "broker should avoid the saturated sites (latency {latency}s)"
    );
    // and the loaded sites did real background work
    let bg: f64 = ["ncsa", "tacc"]
        .iter()
        .map(|n| sim.recorder_ref().total(&format!("{n}.core_seconds")))
        .sum();
    assert!(bg > 0.0);
}

#[test]
fn many_invocations_interleave_with_background_jobs() {
    let mut sim = Sim::new(62);
    let d = deploy_pinned(&mut sim, "psc");
    let req = d.upload_request(
        "probe.exe",
        8 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(45))
            .producing(1.0 * KB),
        &[],
    );
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    let site = Rc::clone(d.grid.site("psc").unwrap());
    BackgroundLoad::moderate(sim.now() + Duration::from_secs(3 * 3600)).start(&mut sim, &site);
    let n = 12;
    let done = Rc::new(Cell::new(0u32));
    let base = sim.now();
    for i in 0..n {
        // stagger arrivals through the background stream
        sim.run_until(base + Duration::from_secs(120 * i as u64));
        let c2 = done.clone();
        d.invoke(&mut sim, "probe", &[], move |_, r| {
            r.expect("invoke");
            c2.set(c2.get() + 1);
        });
    }
    sim.run();
    assert_eq!(done.get(), n);
    assert_eq!(d.onserve.counters(), (n as u64, 0));
    let _ = SimTime::ZERO;
}

#[test]
fn retries_ride_out_a_maintenance_window() {
    // scheduled maintenance on the broker's favourite site; the retry
    // extension re-brokers the invocation to a healthy one
    let mut sim = Sim::new(63);
    let spec = DeploymentSpec {
        config: OnServeConfig {
            job_retries: 3,
            broker: gridsim::BrokerPolicy::MostFreeCores,
            ..OnServeConfig::default()
        },
        ..DeploymentSpec::default()
    };
    let d = Deployment::build(&mut sim, &spec);
    let req = d.upload_request(
        "steady.exe",
        16 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(300))
            .producing(1.0 * KB),
        &[],
    );
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    // MostFreeCores picks tacc (largest); schedule its maintenance to hit
    // mid-job
    let tacc = Rc::clone(d.grid.site("tacc").unwrap());
    let base = sim.now();
    gridsim::Maintenance::window(
        base + Duration::from_secs(120),
        base + Duration::from_secs(3600),
        60,
    )
    .schedule(&mut sim, &tacc);
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    d.invoke(&mut sim, "steady", &[], move |_, r| {
        o.set(r.is_ok());
    });
    sim.run();
    assert!(ok.get(), "invocation must survive the maintenance window");
    assert_eq!(d.onserve.counters(), (1, 0));
    // the job finished somewhere other than the serviced site
    let elsewhere = d
        .grid
        .sites()
        .iter()
        .filter(|s| s.name() != "tacc")
        .map(|s| {
            sim.recorder_ref()
                .total(&format!("{}.core_seconds", s.name()))
        })
        .sum::<f64>();
    assert!(elsewhere > 0.0);
}
