#!/usr/bin/env bash
# The repo's CI gate: release build, full test suite, zero-warning lint.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --examples"
cargo build --workspace --examples

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf regression check (vs BENCH_kernel.json)"
cargo run --release -q -p onserve-bench --bin perfbaseline -- --check

echo "CI OK"
