#!/usr/bin/env bash
# The repo's CI gate: release build, full test suite, zero-warning lint.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

# The perf gate runs first thing after the release build, while the box
# is quiet: the test suite and clippy below thrash cache and scheduler
# for minutes afterwards, which inflates even the min-based floors.
echo "==> perf regression check (vs BENCH_kernel.json)"
cargo run --release -q -p onserve-bench --bin perfbaseline -- --check

echo "==> cargo build --examples"
cargo build --workspace --examples

echo "==> cargo test -q (with test-count floor)"
cargo test -q --workspace 2>&1 | tee target/test-output.log
total_passed=$(grep -Eo '[0-9]+ passed' target/test-output.log | awk '{s+=$1} END {print s}')
echo "    total tests passed: ${total_passed}"
if [ "${total_passed}" -lt 575 ]; then
  echo "test-count floor: expected >= 575 passing tests, got ${total_passed}" >&2
  exit 1
fi

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos tier (golden + soak)"
cargo test -q -p onserve-bench --test golden_determinism chaos_sweep_matches_golden
cargo test -q -p onserve-fleet --test chaos

echo "==> chaos bench determinism (two same-seed runs, byte-identical CSV)"
cargo run --release -q -p onserve-bench --bin chaos > /dev/null
cp target/experiments/chaos.csv target/experiments/chaos-run1.csv
cargo run --release -q -p onserve-bench --bin chaos > /dev/null
cmp target/experiments/chaos-run1.csv target/experiments/chaos.csv

echo "==> affinity tier (golden + determinism)"
cargo test -q -p onserve-bench --test golden_determinism affinity_sweep_matches_golden
cargo run --release -q -p onserve-bench --bin affinity > /dev/null
cp target/experiments/affinity.csv target/experiments/affinity-run1.csv
cargo run --release -q -p onserve-bench --bin affinity > /dev/null
cmp target/experiments/affinity-run1.csv target/experiments/affinity.csv

echo "==> grayfail tier (golden + health soak)"
cargo test -q -p onserve-bench --test golden_determinism grayfail_sweep_matches_golden
cargo test -q -p onserve-fleet --test health

echo "==> grayfail bench determinism (two same-seed runs, byte-identical CSV + exposition)"
cargo run --release -q -p onserve-bench --bin grayfail > /dev/null
cp target/experiments/grayfail.csv target/experiments/grayfail-run1.csv
cp target/experiments/grayfail.prom target/experiments/grayfail-run1.prom
cargo run --release -q -p onserve-bench --bin grayfail > /dev/null
cmp target/experiments/grayfail-run1.csv target/experiments/grayfail.csv
cmp target/experiments/grayfail-run1.prom target/experiments/grayfail.prom

echo "==> geo tier (golden + proptests)"
cargo test -q -p onserve-bench --test golden_determinism geo_sweep_matches_golden
cargo test -q -p onserve-fleet --test proptests geo
cargo test -q -p onserve-fleet --test proptests fleet_conserves_requests_under_site_outages_and_link_faults

echo "==> geo bench determinism (two same-seed runs, byte-identical CSV + exposition)"
cargo run --release -q -p onserve-bench --bin geo > /dev/null
cp target/experiments/geo.csv target/experiments/geo-run1.csv
cp target/experiments/geo.prom target/experiments/geo-run1.prom
cargo run --release -q -p onserve-bench --bin geo > /dev/null
cmp target/experiments/geo-run1.csv target/experiments/geo.csv
cmp target/experiments/geo-run1.prom target/experiments/geo.prom

echo "==> millionuser tier (golden + determinism, CI scale)"
cargo test -q -p onserve-bench --test golden_determinism millionuser_ci_matches_golden
cargo run --release -q -p onserve-bench --bin millionuser -- --ci > /dev/null
cp target/experiments/millionuser.csv target/experiments/millionuser-run1.csv
cargo run --release -q -p onserve-bench --bin millionuser -- --ci > /dev/null
cmp target/experiments/millionuser-run1.csv target/experiments/millionuser.csv

echo "==> rollout tier (golden + proptests + chaos-crossed scenarios)"
cargo test -q -p onserve-bench --test golden_determinism rollout_sweep_matches_golden
cargo test -q -p onserve-fleet --test rollout
cargo test -q -p onserve-fleet --test proptests rollouts_hold_the_floor_keep_pins_live_and_replay

echo "==> rollout bench determinism (two same-seed runs, byte-identical CSV + exposition)"
cargo run --release -q -p onserve-bench --bin rollout > /dev/null
cp target/experiments/rollout.csv target/experiments/rollout-run1.csv
cp target/experiments/rollout.prom target/experiments/rollout-run1.prom
cargo run --release -q -p onserve-bench --bin rollout > /dev/null
cmp target/experiments/rollout-run1.csv target/experiments/rollout.csv
cmp target/experiments/rollout-run1.prom target/experiments/rollout.prom

echo "==> qos tier (golden + tier-survival suite + fairness proptest)"
cargo test -q -p onserve-bench --test golden_determinism noisyneighbor_sweep_matches_golden
cargo test -q -p onserve-fleet --test qos
cargo test -q -p onserve-fleet --test proptests qos_conserves_per_tenant_and_never_starves_underquota_tenants

echo "==> noisyneighbor bench determinism (two same-seed runs, byte-identical CSV + exposition)"
cargo run --release -q -p onserve-bench --bin noisyneighbor > /dev/null
cp target/experiments/noisyneighbor.csv target/experiments/noisyneighbor-run1.csv
cp target/experiments/noisyneighbor.prom target/experiments/noisyneighbor-run1.prom
cargo run --release -q -p onserve-bench --bin noisyneighbor > /dev/null
cmp target/experiments/noisyneighbor-run1.csv target/experiments/noisyneighbor.csv
cmp target/experiments/noisyneighbor-run1.prom target/experiments/noisyneighbor.prom

echo "CI OK"
