//! Parameter-sweep science workload: the "lot of relatively small files"
//! scenario the paper calls out as onServe's sweet spot — "the provided
//! solution is quite good in a scenario using a lot of relatively small
//! files. The network limitation doesn't play a huge role in this case and
//! K-GRAM permits to submit a large number of jobs quite efficiently"
//! (§VIII-B).
//!
//! One solver is uploaded once; a sweep of invocations with different
//! parameters then runs concurrently on the Grid. The report shows the
//! sweep's makespan, per-run latency distribution and where the bytes
//! went.
//!
//! Run with: `cargo run --example param_sweep`

use std::cell::RefCell;
use std::rc::Rc;

use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use simkit::report::TextTable;
use simkit::stats::summarize;
use simkit::{Duration, Sim, KB};
use wsstack::SoapValue;

fn main() {
    let mut sim = Sim::new(7);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());

    // one small solver, many runs
    let profile = ExecutionProfile {
        runtime: Duration::from_secs(180),
        runtime_jitter: 0.15,
        cores: 4,
        output_bytes: 48.0 * KB,
        walltime_factor: 3.0,
    };
    let req = d.upload_request(
        "heatsolver.exe",
        96 * 1024,
        profile,
        &[("alpha", "double"), ("steps", "int")],
    );
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    println!("heatsolver published; starting 24-point parameter sweep\n");

    let t0 = sim.now();
    let latencies: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..24 {
        let alpha = 0.05 * (i as f64 + 1.0);
        let lat = latencies.clone();
        let started = sim.now();
        d.invoke(
            &mut sim,
            "heatsolver",
            &[
                ("alpha", SoapValue::Double(alpha)),
                ("steps", SoapValue::Int(1000 + 50 * i)),
            ],
            move |sim, r| {
                r.expect("sweep point");
                lat.borrow_mut().push((sim.now() - started).as_secs_f64());
            },
        );
    }
    sim.run();
    let makespan = (sim.now() - t0).as_secs_f64();
    let lats = latencies.borrow();
    assert_eq!(lats.len(), 24, "all sweep points must complete");
    let s = summarize(&lats);

    let mut table = TextTable::new(vec!["metric", "value"]);
    table
        .row(vec!["sweep points".to_string(), "24".into()])
        .row(vec!["makespan".into(), format!("{makespan:.0} s")])
        .row(vec!["mean latency".into(), format!("{:.0} s", s.mean)])
        .row(vec!["p50 latency".into(), format!("{:.0} s", s.p50)])
        .row(vec!["p95 latency".into(), format!("{:.0} s", s.p95)])
        .row(vec![
            "speedup vs serial".into(),
            format!("{:.1}x", s.mean * 24.0 / makespan),
        ]);
    println!("{}", table.render());

    // where the load landed
    let mut sites = TextTable::new(vec!["site", "core-seconds"]);
    for site in d.grid.sites() {
        let cs = sim
            .recorder_ref()
            .total(&format!("{}.core_seconds", site.name()));
        if cs > 0.0 {
            sites.row(vec![site.name().to_string(), format!("{cs:.0}")]);
        }
    }
    println!("{}", sites.render());
    println!(
        "appliance egress {:.1} MB (24 stagings of one 96 KB solver + control)",
        sim.recorder_ref().total("appliance.net.out.bytes") / (1024.0 * 1024.0)
    );
    println!(
        "tentative output polls issued: {}",
        d.agent.polls_issued()
    );
}
