//! Cyberaide Shell session: the *manual* JSE workflow the paper's §III
//! toolkit exposed, and exactly what onServe automates away. A scripted
//! shell session authenticates, inspects the Grid, stages a binary,
//! submits a job, discovers that the status interface is broken (the
//! paper's workaround!) and falls back to tentative output polling.
//!
//! Run with: `cargo run --example grid_shell`

use cyberaide::Shell;
use onserve::deployment::{Deployment, DeploymentSpec};
use simkit::Sim;
use std::rc::Rc;

fn main() {
    let mut sim = Sim::new(31);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let shell = Shell::new(Rc::clone(&d.agent));

    let script: Vec<String> = [
        "help",
        "auth alice s3cret",
        "info",
        "stage tacc blast.exe 2097152",
        "submit tacc blast.exe 120 65536 --evalue 1e-5",
        "status tacc 0",
        "poll tacc 0",
        "wait tacc 0 9",
        "logout",
    ]
    .into_iter()
    .map(String::from)
    .collect();

    shell.run_script(&mut sim, script, |sim, transcript| {
        for (line, result) in transcript {
            println!("cyberaide> {line}");
            match result {
                Ok(out) => {
                    for l in out.lines() {
                        println!("  {l}");
                    }
                }
                Err(e) => println!("  error: {e}"),
            }
            println!();
        }
        println!("(session ended at t={})", sim.now());
    });
    sim.run();
}
