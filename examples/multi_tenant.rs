//! A shared remote appliance: "The access layer can be deployed locally by
//! a user, or deployed in a shared remote location and used by multiple
//! users" (§V). Three research groups publish their own tools on one
//! onServe instance and invoke them concurrently; the report shows the
//! registry contents, each group's runs and the appliance's aggregate
//! load.
//!
//! Run with: `cargo run --example multi_tenant`

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use simkit::report::{fmt_bytes, TextTable};
use simkit::{Duration, Sim, KB, MB};
use wsstack::SoapValue;

struct Tenant {
    tool: &'static str,
    exe_bytes: usize,
    runs: usize,
    profile: ExecutionProfile,
}

fn main() {
    let mut sim = Sim::new(99);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());

    // every group gets its own Grid identity and a TeraGrid-style
    // service-unit allocation at each site
    for (user, su) in [("genomics", 400.0), ("climate", 2000.0), ("montecarlo", 100.0)] {
        d.enroll_tenant(&sim, user, "pw", Some(su));
    }

    let tenants = [
        Tenant {
            tool: "genomics_blast.exe",
            exe_bytes: 2 * 1024 * 1024,
            runs: 6,
            profile: ExecutionProfile::quick()
                .lasting(Duration::from_secs(240))
                .producing(512.0 * KB),
        },
        Tenant {
            tool: "climate_wrf.exe",
            exe_bytes: 5 * 1024 * 1024,
            runs: 3,
            profile: ExecutionProfile::science_run()
                .lasting(Duration::from_secs(900))
                .on_cores(16)
                .producing(2.0 * MB),
        },
        Tenant {
            tool: "montecarlo_pi.exe",
            exe_bytes: 64 * 1024,
            runs: 12,
            profile: ExecutionProfile::quick()
                .lasting(Duration::from_secs(90))
                .producing(8.0 * KB),
        },
    ];

    // every tenant publishes its tool under its own identity
    for t in &tenants {
        let mut req = d.upload_request(t.tool, t.exe_bytes, t.profile, &[("seed", "int")]);
        req.grid_user = t.tool.split('_').next().unwrap_or("genomics").to_string();
        req.grid_passphrase = "pw".into();
        d.portal.upload(&mut sim, req, |_, r| {
            r.expect("publish");
        });
        sim.run();
    }
    {
        let mut reg = d.onserve.registry().borrow_mut();
        println!("UDDI registry after onboarding:");
        for svc in reg.find("%") {
            println!("  {}  {}  -> {}", svc.service_key, svc.name, svc.bindings[0].access_point);
        }
        println!();
    }

    // all tenants fire their runs concurrently
    let completions: Rc<RefCell<BTreeMap<String, Vec<f64>>>> =
        Rc::new(RefCell::new(BTreeMap::new()));
    let t0 = sim.now();
    for t in &tenants {
        let service = t.tool.trim_end_matches(".exe").to_string();
        for run in 0..t.runs {
            let c = completions.clone();
            let svc = service.clone();
            let started = sim.now();
            d.invoke(
                &mut sim,
                &service,
                &[("seed", SoapValue::Int(run as i64))],
                move |sim, r| {
                    r.expect("run");
                    c.borrow_mut()
                        .entry(svc.clone())
                        .or_default()
                        .push((sim.now() - started).as_secs_f64());
                },
            );
        }
    }
    sim.run();
    let makespan = (sim.now() - t0).as_secs_f64();

    let mut table = TextTable::new(vec!["tenant service", "runs", "mean latency", "max latency"]);
    for (svc, lats) in completions.borrow().iter() {
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        let max = lats.iter().copied().fold(0.0, f64::max);
        table.row(vec![
            svc.clone(),
            lats.len().to_string(),
            format!("{mean:.0} s"),
            format!("{max:.0} s"),
        ]);
    }
    println!("{}", table.render());
    let total_runs: usize = tenants.iter().map(|t| t.runs).sum();
    let (inv, fail) = d.onserve.counters();
    assert_eq!(inv as usize, total_runs);
    println!("all {inv} runs completed ({fail} failures) in {makespan:.0} s of shared-appliance time");
    println!(
        "appliance totals: egress {}, ingress {}, disk writes {}",
        fmt_bytes(sim.recorder_ref().total("appliance.net.out.bytes")),
        fmt_bytes(sim.recorder_ref().total("appliance.net.in.bytes")),
        fmt_bytes(sim.recorder_ref().total("appliance.disk.write.bytes")),
    );

    // the accounting view a TeraGrid PI would check
    println!("\nservice-unit usage (metered sites only):");
    let mut usage = TextTable::new(vec!["tenant DN", "site", "used SU", "granted SU"]);
    for (dn, site, alloc) in d.grid.usage_report() {
        if alloc.used_core_hours > 0.0 {
            usage.row(vec![
                dn,
                site,
                format!("{:.2}", alloc.used_core_hours),
                format!("{:.0}", alloc.granted_core_hours),
            ]);
        }
    }
    println!("{}", usage.render());
}
