//! The baseline the paper argues against: using the production Grid's raw
//! Job-Submission-Execution model directly — MyProxy authentication, hand-
//! written RSL, GRAM submission, manual output polling — with no SaaS
//! layer. Running the same job both ways quantifies what onServe adds
//! (convenience) and what it costs (middleware overhead), the §VIII-B
//! claim that the overhead "should be quite small compared to the runtime
//! of a typical executable".
//!
//! Run with: `cargo run --example raw_jse_baseline`

use std::cell::Cell;
use std::rc::Rc;

use cyberaide::OutputPoller;
use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use simkit::report::TextTable;
use simkit::{Duration, Sim, KB};
use wsstack::SoapValue;

/// Raw JSE: drive the agent by hand, like a 2010 grid user with a shell.
fn run_raw_jse(runtime: Duration, exe_bytes: f64, output_bytes: f64) -> f64 {
    let mut sim = Sim::new(1);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let t0 = sim.now();
    let done_at = Rc::new(Cell::new(0.0));
    let da = done_at.clone();
    let agent = Rc::clone(&d.agent);
    let grid = Rc::clone(&d.grid);
    agent.clone().authenticate(&mut sim, "alice", "s3cret", move |sim, auth| {
        let session = auth.expect("auth");
        let site = grid
            .select(&gridsim::BrokerPolicy::MostFreeCores, 1, sim.now())
            .expect("site");
        let agent2 = Rc::clone(&agent);
        let site2 = Rc::clone(&site);
        agent.stage_file(sim, session, &site, "job.exe", exe_bytes, move |sim, staged| {
            staged.expect("stage");
            let jd = agent2
                .generate_job_description("job.exe", &[], "job.out")
                .walltime(Duration::from_secs_f64(runtime.as_secs_f64() * 4.0));
            let exec = gridsim::gram::ExecutionModel {
                actual_runtime: runtime,
                output_bytes,
            };
            let agent3 = Rc::clone(&agent2);
            let site3 = Rc::clone(&site2);
            agent2.clone().submit_job(sim, session, &site3, &jd, exec, move |sim, sub| {
                let handle = sub.expect("submit");
                OutputPoller::default().start(
                    sim,
                    agent3,
                    session,
                    site2,
                    handle,
                    move |sim, polled| {
                        polled.expect("output");
                        da.set(sim.now().as_secs_f64());
                    },
                );
            });
        });
    });
    sim.run();
    done_at.get() - t0.as_secs_f64()
}

/// SaaS: upload once (excluded from the timing), invoke through the stack.
fn run_saas(runtime: Duration, exe_bytes: usize, output_bytes: f64) -> f64 {
    let mut sim = Sim::new(1);
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    let profile = ExecutionProfile::quick()
        .lasting(runtime)
        .producing(output_bytes);
    let req = d.upload_request("job.exe", exe_bytes, profile, &[]);
    d.portal.upload(&mut sim, req, |_, r| {
        r.expect("publish");
    });
    sim.run();
    let t0 = sim.now();
    let done_at = Rc::new(Cell::new(0.0));
    let da = done_at.clone();
    d.invoke(&mut sim, "job", &[], move |sim, r| {
        assert!(matches!(r, Ok(SoapValue::Binary { .. })));
        da.set(sim.now().as_secs_f64());
    });
    sim.run();
    done_at.get() - t0.as_secs_f64()
}

fn main() {
    println!("SaaS (onServe) vs raw JSE, same job, same grid, same WAN\n");
    let mut table = TextTable::new(vec![
        "job runtime",
        "raw JSE",
        "onServe SaaS",
        "overhead",
        "overhead %",
    ]);
    for &(runtime_s, exe_kb, out_kb) in &[
        (10u64, 64usize, 16.0),
        (60, 64, 16.0),
        (600, 256, 128.0),
        (3600, 1024, 512.0),
    ] {
        let runtime = Duration::from_secs(runtime_s);
        let raw = run_raw_jse(runtime, (exe_kb * 1024) as f64, out_kb * KB);
        let saas = run_saas(runtime, exe_kb * 1024, out_kb * KB);
        let overhead = saas - raw;
        table.row(vec![
            format!("{runtime_s} s"),
            format!("{raw:.1} s"),
            format!("{saas:.1} s"),
            format!("{overhead:+.1} s"),
            format!("{:+.1}%", 100.0 * overhead / raw),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the JSE user wrote RSL, handled proxies and polled by hand;\n\
         the SaaS consumer made one typed Web-service call — for seconds\n\
         of middleware cost on minutes-to-hours jobs (the §VIII-B claim)."
    );
}
