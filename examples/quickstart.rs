//! Quickstart: the paper's whole story in one run.
//!
//! 1. Build the Cyberaide onServe appliance image from its recipe and
//!    deploy it on demand (§V step 1).
//! 2. Upload an executable through the portal; onServe stores it,
//!    generates a Web service and publishes it in the UDDI registry
//!    (§VII-A).
//! 3. Discover the service, generate a client stub from its WSDL, invoke
//!    it; onServe translates the invocation to the JSE model and runs the
//!    job on the simulated TeraGrid (§VII-B).
//!
//! Run with: `cargo run --example quickstart`

use std::cell::Cell;
use std::rc::Rc;

use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, Link, Sim, SimTime, GBIT_PER_S, KB};
use vappliance::{build_image, Appliance, ApplianceRecipe, DeploySpec};
use wsstack::{ClientStub, SoapValue};

fn main() {
    let mut sim = Sim::new(2010);
    println!("== Cyberaide onServe quickstart ==\n");

    // ---- 1. build + deploy the appliance on demand -------------------
    let builder = simkit::Host::new(&simkit::HostSpec::commodity("builder"));
    let repo_link = Link::new(
        "repo",
        "mirror",
        "builder",
        GBIT_PER_S / 8.0,
        Duration::from_millis(15),
    );
    let deploy_link = Link::new(
        "imgstore",
        "builder",
        "vmm",
        GBIT_PER_S,
        Duration::from_millis(2),
    );
    let recipe = ApplianceRecipe::cyberaide_onserve();
    println!(
        "building appliance image: {} packages, {:.0} MB of downloads",
        recipe.packages.len(),
        recipe.download_bytes() / (1024.0 * 1024.0)
    );
    let running_at = Rc::new(Cell::new(SimTime::ZERO));
    let r2 = running_at.clone();
    build_image(&mut sim, &builder, &repo_link, &recipe, move |sim, img| {
        println!(
            "t={:>8}  image built ({:.0} MB)",
            sim.now(),
            img.bytes / (1024.0 * 1024.0)
        );
        Appliance::deploy(
            sim,
            &img,
            &deploy_link,
            &DeploySpec::default_for("appliance-vm"),
            move |sim, app| {
                println!(
                    "t={:>8}  appliance running ({} services booted)",
                    sim.now(),
                    app.services().len()
                );
                r2.set(sim.now());
            },
        );
    });
    sim.run();
    assert!(running_at.get() > SimTime::ZERO);

    // ---- 2. the running middleware stack ------------------------------
    let d = Deployment::build(&mut sim, &DeploymentSpec::default());
    println!("\nt={:>8}  onServe stack up: portal + SOAP container + jUDDI + MySQL + agent", sim.now());

    let profile = ExecutionProfile::quick()
        .lasting(Duration::from_secs(45))
        .producing(96.0 * KB);
    let req = d.upload_request("mandelbrot.exe", 300 * 1024, profile, &[("depth", "int")]);
    println!(
        "t={:>8}  uploading {} ({} bytes) through the portal...",
        sim.now(),
        req.file_name,
        req.data.len()
    );
    d.portal.upload(&mut sim, req, |sim, r| {
        let svc = r.expect("publish");
        println!(
            "t={:>8}  published '{}' at {} (UDDI key {})",
            sim.now(),
            svc.service_name,
            svc.endpoint,
            svc.service_key
        );
    });
    sim.run();

    // ---- 3. discover + invoke like an external consumer ---------------
    let (wsdl_location, endpoint) = {
        let mut reg = d.onserve.registry().borrow_mut();
        let hit = &reg.find("mandel%")[0];
        (
            hit.bindings[0].wsdl_location.clone(),
            hit.bindings[0].access_point.clone(),
        )
    };
    println!("\ndiscovered in UDDI: endpoint {endpoint}\n  wsdl {wsdl_location}");
    let stub: ClientStub = d.onserve.client_for("mandelbrot").expect("wsimport");
    println!(
        "generated client stub: operations = {:?}",
        stub.operations().collect::<Vec<_>>()
    );
    let t0 = sim.now();
    let done_at = Rc::new(Cell::new(SimTime::ZERO));
    let done2 = done_at.clone();
    d.invoke(
        &mut sim,
        "mandelbrot",
        &[("depth", SoapValue::Int(2048))],
        move |sim, r| {
            match r.expect("invocation") {
                SoapValue::Binary { bytes, .. } => println!(
                    "t={:>8}  result delivered: {:.0} KB of output",
                    sim.now(),
                    bytes / 1024.0
                ),
                other => println!("unexpected result {other:?}"),
            }
            done2.set(sim.now());
        },
    );
    sim.run();
    assert!(done_at.get() > t0);
    println!(
        "\nSaaS invocation wall time: {} (job runtime was 45s)",
        done_at.get() - t0
    );
    let (inv, fail) = d.onserve.counters();
    println!("middleware counters: {inv} invocation(s), {fail} failure(s)");
    println!(
        "appliance egress {:.0} KB, ingress {:.0} KB",
        sim.recorder_ref().total("appliance.net.out.bytes") / 1024.0,
        sim.recorder_ref().total("appliance.net.in.bytes") / 1024.0,
    );
}
