//! Offline stand-in for `criterion`: a small but real micro-benchmark
//! harness (see `third_party/README.md`).
//!
//! Each `Bencher::iter` call calibrates a batch size so one batch runs for
//! a few milliseconds, then times `sample_size` batches and reports the
//! mean/min ns-per-iteration (plus derived throughput when the group set
//! one). Command-line arguments that are not flags act as substring
//! filters on the benchmark id, like the real crate.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Unit the id's measured time is divided by for a throughput line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// One measured result.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Iterations per timed batch.
    pub iters_per_sample: u64,
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
    /// All results measured so far (inspectable by custom mains).
    pub samples: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            filters,
            samples: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark (min 5).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(5);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Run one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.as_ref(), None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean_ns: 0.0,
            min_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let sample = Sample {
            id: id.to_owned(),
            mean_ns: b.mean_ns,
            min_ns: b.min_ns,
            iters_per_sample: b.iters,
        };
        let line = match throughput {
            Some(Throughput::Bytes(n)) => format!(
                "{:<44} time: {:>12} ({:.1} MiB/s)",
                sample.id,
                fmt_ns(sample.mean_ns),
                n as f64 / (sample.mean_ns / 1e9) / (1024.0 * 1024.0)
            ),
            Some(Throughput::Elements(n)) => format!(
                "{:<44} time: {:>12} ({:.0} elem/s)",
                sample.id,
                fmt_ns(sample.mean_ns),
                n as f64 / (sample.mean_ns / 1e9)
            ),
            None => format!("{:<44} time: {:>12}", sample.id, fmt_ns(sample.mean_ns)),
        };
        println!("{line}");
        self.samples.push(sample);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group sharing a name prefix and optional throughput annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(5);
        self
    }

    /// Run one benchmark in the group (id becomes `group/function`).
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        let t = self.throughput;
        self.c.run_one(&full, t, f);
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` performs the measurement.
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`: calibrate a batch size (~2 ms per batch), then
    /// time `sample_size` batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // warmup + calibration
        let target = Duration::from_millis(2);
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let el = t0.elapsed();
            if el >= target || iters >= 1 << 28 {
                if el > Duration::ZERO && el < target {
                    let scale = target.as_secs_f64() / el.as_secs_f64();
                    iters = ((iters as f64 * scale).ceil() as u64).max(iters);
                }
                break;
            }
            iters *= 2;
        }
        // measurement
        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
        }
        self.mean_ns = total_ns / self.sample_size as f64;
        self.min_ns = min_ns;
        self.iters = iters;
    }
}

/// Define a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            sample_size: 5,
            filters: Vec::new(),
            samples: Vec::new(),
        };
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        assert_eq!(c.samples.len(), 1);
        assert!(c.samples[0].mean_ns > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 5,
            filters: vec!["xyz".into()],
            samples: Vec::new(),
        };
        c.bench_function("abc", |b| b.iter(|| 1u32));
        assert!(c.samples.is_empty());
    }
}
