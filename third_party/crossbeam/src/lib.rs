//! Offline stand-in for `crossbeam`: scoped threads over
//! `std::thread::scope`. See `third_party/README.md`.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread::Scope as StdScope;

    /// Handle passed to the scope closure; spawns threads that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope StdScope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle
        /// (crossbeam convention), which allows nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; joins all spawned threads before
    /// returning. Returns `Err` if any spawned thread panicked (matching
    /// crossbeam's contract); std's scope propagates child panics as a
    /// panic on join, so in practice a child panic unwinds here.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let mut results = vec![0u64; data.len()];
        crate::thread::scope(|scope| {
            for (slot, &x) in results.iter_mut().zip(&data) {
                scope.spawn(move |_| *slot = x * 10);
            }
        })
        .expect("threads");
        assert_eq!(results, vec![10, 20, 30, 40]);
    }
}
