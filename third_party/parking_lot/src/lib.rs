//! Offline stand-in for `parking_lot`: non-poisoning `Mutex` over the
//! standard library. See `third_party/README.md`.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutex whose `lock()` never returns a `Result` (poisoning is ignored,
/// matching parking_lot semantics).
#[derive(Default, Debug)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
