//! Offline stand-in for `proptest`: deterministic random property testing
//! without shrinking (see `third_party/README.md`).
//!
//! The [`proptest!`] macro runs each property over `ProptestConfig::cases`
//! pseudo-random cases seeded from the test's name, so failures are
//! reproducible run-to-run. On a failing case the harness prints the case
//! index and seed before propagating the panic; it does not shrink the
//! counterexample.

pub mod collection;
pub mod option;
pub mod string;
pub mod strategy;
pub mod test_runner;

/// Everything the idiomatic `use proptest::prelude::*;` import expects.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: `fn name(pat in strategy, ...) { body }`.
///
/// Accepts an optional `#![proptest_config(...)]` header selecting the
/// case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_from_name(stringify!($name));
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                        })
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest: property {} failed at case {}/{} (seed {:#x})",
                            stringify!($name), case, config.cases, seed
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
