//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Option<T>` values: `Some` about three times out of four.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn produces_both_variants() {
        let s = of(0u32..100);
        let mut rng = TestRng::new(31);
        let (mut some, mut none) = (0, 0);
        for _ in 0..1_000 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 100);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
