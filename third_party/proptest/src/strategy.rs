//! The `Strategy` trait and core combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive structures: `expand` receives the strategy built so
    /// far and returns one that may embed it. `depth` bounds the nesting;
    /// the remaining two parameters (desired size / expected branching)
    /// are accepted for API compatibility and unused here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            let deeper = expand(s.clone()).boxed();
            // each level: half leaves, half one-deeper trees
            s = Union::new(vec![s, deeper]).boxed();
        }
        s
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choice over the given options (must be nonempty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_in(0, self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T` (whole-domain sampling).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, spread across magnitudes
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.flip() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // no full-domain inclusive ranges in tests
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let u = rng.unit_f64() as $t;
                self.start() + u * (self.end() - self.start())
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

/// A `&str` literal is a regex strategy producing matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..5_000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&y));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_union_just_compose() {
        let mut rng = TestRng::new(12);
        let s = crate::prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|x| x * 2),
        ];
        for _ in 0..1_000 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(13);
        let (a, b, c) = (0u8..4, 10usize..12, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 4);
        assert!((10..12).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10);
                    1
                }
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(14);
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            assert!(depth(&t) <= 4, "tree too deep: {t:?}");
        }
    }
}
