//! Deterministic RNG and run configuration for the property harness.

/// How many cases a property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; these simulation-heavy properties
        // get solid coverage at 48 while keeping `cargo test` fast.
        ProptestConfig { cases: 48 }
    }
}

/// Stable 64-bit seed derived from a test name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 generator: tiny, fast, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // multiply-shift bounded sampling (Lemire); bias is negligible for
        // test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(1);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::new(2);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
