//! String-from-regex strategies.
//!
//! Supports the subset of regex syntax this workspace's tests use:
//! literals, escapes, `\d`/`\w`/`\s`/`\PC`, character classes with ranges
//! (`[a-zA-Z0-9_.-]`, `[ -~]`), groups, alternation, and the quantifiers
//! `?`, `*`, `+`, `{n}`, `{n,}`, `{n,m}`. Unbounded repetition is capped
//! at 8.

use std::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

/// Parse failure from [`string_regex`].
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex strategy: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Strings matching `pattern` (anchored, as in the real crate).
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
    let mut p = Parser { chars: pattern.chars().collect(), pos: 0 };
    let node = p.parse_alt()?;
    if p.pos != p.chars.len() {
        return Err(Error(format!("trailing input at {}", p.pos)));
    }
    Ok(RegexStrategy { node })
}

/// See [`string_regex`].
#[derive(Clone, Debug)]
pub struct RegexStrategy {
    node: Node,
}

impl Strategy for RegexStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.node.emit(rng, &mut out);
        out
    }
}

#[derive(Clone, Debug)]
enum Node {
    Seq(Vec<Node>),
    Alt(Vec<Node>),
    Class(Vec<char>),
    Lit(char),
    Repeat(Box<Node>, u32, u32),
}

impl Node {
    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Node::Seq(parts) => {
                for p in parts {
                    p.emit(rng, out);
                }
            }
            Node::Alt(opts) => opts[rng.usize_in(0, opts.len())].emit(rng, out),
            Node::Class(chars) => out.push(chars[rng.usize_in(0, chars.len())]),
            Node::Lit(c) => out.push(*c),
            Node::Repeat(inner, lo, hi) => {
                let n = *lo + rng.below((*hi - *lo + 1) as u64) as u32;
                for _ in 0..n {
                    inner.emit(rng, out);
                }
            }
        }
    }
}

/// Every ASCII-printable character plus a few multibyte ones, for `\PC`
/// (any char outside Unicode category C — approximated by a pool).
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    pool.extend(['ä', 'é', 'λ', '中', '→']);
    pool
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Node, Error> {
        let mut opts = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.next();
            opts.push(self.parse_seq()?);
        }
        Ok(if opts.len() == 1 { opts.pop().unwrap() } else { Node::Alt(opts) })
    }

    fn parse_seq(&mut self) -> Result<Node, Error> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            parts.push(self.parse_quantifier(atom)?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Node::Seq(parts) })
    }

    fn parse_atom(&mut self) -> Result<Node, Error> {
        match self.next() {
            Some('(') => {
                // tolerate non-capturing prefix
                if self.peek() == Some('?') {
                    self.next();
                    if self.next() != Some(':') {
                        return Err(Error("unsupported group flag".into()));
                    }
                }
                let inner = self.parse_alt()?;
                if self.next() != Some(')') {
                    return Err(Error("unclosed group".into()));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('\\') => self.parse_escape(),
            Some('.') => Ok(Node::Class(printable_pool())),
            Some(c @ ('*' | '+' | '?' | '{' | ')')) => {
                Err(Error(format!("dangling metacharacter {c:?}")))
            }
            Some(c) => Ok(Node::Lit(c)),
            None => Err(Error("unexpected end of pattern".into())),
        }
    }

    fn parse_escape(&mut self) -> Result<Node, Error> {
        match self.next() {
            Some('d') => Ok(Node::Class(('0'..='9').collect())),
            Some('w') => {
                let mut cs: Vec<char> = ('a'..='z').collect();
                cs.extend('A'..='Z');
                cs.extend('0'..='9');
                cs.push('_');
                Ok(Node::Class(cs))
            }
            Some('s') => Ok(Node::Class(vec![' ', '\t', '\n'])),
            Some('P') => {
                // only \PC ("not category C" = printable) is used
                if self.next() != Some('C') {
                    return Err(Error("unsupported \\P category".into()));
                }
                Ok(Node::Class(printable_pool()))
            }
            Some('n') => Ok(Node::Lit('\n')),
            Some('t') => Ok(Node::Lit('\t')),
            Some(c) => Ok(Node::Lit(c)),
            None => Err(Error("dangling backslash".into())),
        }
    }

    fn parse_class(&mut self) -> Result<Node, Error> {
        if self.peek() == Some('^') {
            return Err(Error("negated classes unsupported".into()));
        }
        let mut chars = Vec::new();
        loop {
            let c = match self.next() {
                None => return Err(Error("unclosed character class".into())),
                Some(']') => break,
                Some('\\') => match self.parse_escape()? {
                    Node::Lit(c) => c,
                    Node::Class(cs) => {
                        chars.extend(cs);
                        continue;
                    }
                    _ => return Err(Error("bad escape in class".into())),
                },
                Some(c) => c,
            };
            // range if a '-' follows and isn't the closing char
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.next();
                let hi = match self.next() {
                    Some('\\') => match self.parse_escape()? {
                        Node::Lit(c) => c,
                        _ => return Err(Error("bad range bound".into())),
                    },
                    Some(h) => h,
                    None => return Err(Error("unclosed character class".into())),
                };
                if (hi as u32) < (c as u32) {
                    return Err(Error(format!("inverted range {c}-{hi}")));
                }
                for u in c as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(u) {
                        chars.push(ch);
                    }
                }
            } else {
                chars.push(c);
            }
        }
        if chars.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(Node::Class(chars))
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
        let (lo, hi) = match self.peek() {
            Some('?') => (0, 1),
            Some('*') => (0, UNBOUNDED_CAP),
            Some('+') => (1, UNBOUNDED_CAP),
            Some('{') => {
                self.next();
                let lo = self.parse_number()?;
                let hi = match self.peek() {
                    Some(',') => {
                        self.next();
                        if self.peek() == Some('}') {
                            lo.max(UNBOUNDED_CAP)
                        } else {
                            self.parse_number()?
                        }
                    }
                    _ => lo,
                };
                if self.next() != Some('}') {
                    return Err(Error("unclosed repetition".into()));
                }
                if hi < lo {
                    return Err(Error(format!("inverted repetition {{{lo},{hi}}}")));
                }
                return Ok(Node::Repeat(Box::new(atom), lo, hi));
            }
            _ => return Ok(atom),
        };
        self.next();
        Ok(Node::Repeat(Box::new(atom), lo, hi))
    }

    fn parse_number(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.next();
        }
        if self.pos == start {
            return Err(Error("expected number in repetition".into()));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|_| Error("repetition count overflow".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn all_match(pattern: &str, check: impl Fn(&str) -> bool) {
        let s = string_regex(pattern).expect("parse");
        let mut rng = TestRng::new(41);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!(check(&v), "pattern {pattern:?} produced {v:?}");
        }
    }

    #[test]
    fn ident_class_with_bounds() {
        all_match("[a-zA-Z0-9_.-]{1,24}", |v| {
            (1..=24).contains(&v.chars().count())
                && v.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c))
        });
    }

    #[test]
    fn alternation_picks_variants() {
        all_match("(string|int|double|boolean)", |v| {
            ["string", "int", "double", "boolean"].contains(&v)
        });
    }

    #[test]
    fn printable_space_to_tilde() {
        all_match("[ -~]{0,24}", |v| {
            v.chars().count() <= 24 && v.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn nested_optional_groups() {
        // trimmed-string shape: empty, or printable with non-space ends
        all_match("([!-~]([ -~]{0,20}[!-~])?)?", |v| {
            v.is_empty()
                || (v.chars().all(|c| (' '..='~').contains(&c))
                    && !v.starts_with(' ')
                    && !v.ends_with(' '))
        });
    }

    #[test]
    fn leading_letter_then_tail() {
        all_match("[A-Za-z][A-Za-z0-9_.:-]{0,12}", |v| {
            v.chars().next().unwrap().is_ascii_alphabetic() && v.chars().count() <= 13
        });
    }

    #[test]
    fn printable_category_escape() {
        all_match("\\PC{0,40}", |v| {
            v.chars().count() <= 40 && v.chars().all(|c| !c.is_control())
        });
    }

    #[test]
    fn rejects_garbage() {
        assert!(string_regex("[").is_err());
        assert!(string_regex("(a").is_err());
        assert!(string_regex("a{3,1}").is_err());
        assert!(string_regex("*a").is_err());
    }
}
