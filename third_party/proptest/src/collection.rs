//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi)
    }
}

/// `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeMap`s over `key`/`value` with a size in `size`.
///
/// Keys may collide; up to 4× the target size is attempted, so the result
/// can come up short when the key space is narrow (matches the real
/// crate's best-effort behaviour).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { key, value, size: size.into() }
}

/// See [`btree_map`].
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        for _ in 0..4 * n.max(1) {
            if out.len() >= n {
                break;
            }
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

/// `BTreeSet`s of `element` with a size in `size` (best-effort, like
/// [`btree_map`]).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        for _ in 0..4 * n.max(1) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_len_in_range() {
        let s = vec(0u8..255, 2..6);
        let mut rng = TestRng::new(21);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn map_hits_target_with_wide_keyspace() {
        let s = btree_map(0u64..1_000_000, 0u8..10, 5..8);
        let mut rng = TestRng::new(22);
        for _ in 0..200 {
            let m = s.generate(&mut rng);
            assert!((5..8).contains(&m.len()), "len {}", m.len());
        }
    }

    #[test]
    fn set_bounded_when_keyspace_narrow() {
        // only 3 possible elements; asking for 5 must terminate anyway
        let s = btree_set(0u8..3, 5..6);
        let mut rng = TestRng::new(23);
        let set = s.generate(&mut rng);
        assert!(set.len() <= 3);
    }
}
