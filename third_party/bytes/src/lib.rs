//! Offline stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte container. See `third_party/README.md`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (clones are O(1)).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out to an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes(iter.into_iter().collect())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == &other.0[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn compares_with_vec() {
        let b = Bytes::from(vec![9u8; 4]);
        assert_eq!(b, vec![9u8; 4]);
        assert_eq!(vec![9u8; 4], b);
    }
}
